//! Remote-serving chaos suite: the supervised multi-process fleet
//! behind `serve --shard-workers N` survives worker murder (respawn +
//! recovery, byte-identical answers), never leaks worker processes past
//! a graceful drain, and an unreachable shard surfaces as the
//! documented policy — a structured `shard_unavailable` refusal by
//! default, an explicitly marked `degraded` best-effort answer under
//! `--degraded-answers true`.
//!
//! The supervision test drives the real `wikisearch` binary as a
//! subprocess (workers are grandchildren, exactly as deployed); the
//! policy tests attach an in-process server to in-process workers via
//! `--shard-addr`, which keeps them deterministic and dependency-free.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn free_port() -> u16 {
    let probe = TcpListener::bind("127.0.0.1:0").unwrap();
    let port = probe.local_addr().unwrap().port();
    drop(probe);
    port
}

/// An address that is guaranteed dead: bound once, then released.
fn dead_addr() -> SocketAddr {
    let probe = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = probe.local_addr().unwrap();
    drop(probe);
    addr
}

fn graph_file(tag: &str) -> String {
    let path = std::env::temp_dir()
        .join(format!("ws-remote-{}-{tag}.tsv", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let mut b = kgraph::GraphBuilder::new();
    let x = b.add_node("x", "xml");
    let q = b.add_node("q", "query language");
    let s = b.add_node("s", "sql");
    let r = b.add_node("r", "rdf");
    b.add_edge(x, q, "rel");
    b.add_edge(s, q, "rel");
    b.add_edge(r, q, "rel");
    std::fs::write(&path, kgraph::io::to_tsv(&b.build())).unwrap();
    path
}

fn connect(port: u16) -> (TcpStream, BufReader<TcpStream>) {
    for _ in 0..300 {
        if let Ok(s) = TcpStream::connect(("127.0.0.1", port)) {
            s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
            let reader = BufReader::new(s.try_clone().unwrap());
            return (s, reader);
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("server not reachable on port {port}");
}

fn roundtrip(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, request: &str) -> String {
    writeln!(stream, "{request}").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.ends_with('\n'), "truncated response to {request:?}: {line:?}");
    line.trim_end().to_string()
}

/// A query response with its volatile fields removed — wall time and
/// the per-query fleet-wide id — so two runs of the same query can be
/// compared byte for byte.
fn normalized(response: &str) -> String {
    let mut doc: serde_json::Value =
        serde_json::from_str(response).unwrap_or_else(|e| panic!("bad JSON {response:?}: {e}"));
    let serde_json::Value::Object(entries) = &mut doc else {
        panic!("non-object response {response:?}");
    };
    entries.retain(|(key, _)| key != "ms" && key != "qid");
    serde_json::to_string(&doc).unwrap()
}

/// Whether a PID is alive (`kill -0`), as seen by the test process.
fn pid_alive(pid: u64) -> bool {
    Command::new("kill")
        .args(["-0", &pid.to_string()])
        .stderr(Stdio::null())
        .status()
        .map(|s| s.success())
        .unwrap_or(false)
}

/// The worker PIDs the server currently reports on STATS.
fn fleet_pids(doc: &serde_json::Value) -> Vec<u64> {
    doc["remote"]["workers"]["pids"]
        .as_array()
        .unwrap_or_else(|| panic!("no fleet PIDs in {doc}"))
        .iter()
        .map(|p| p.as_u64().unwrap())
        .collect()
}

/// Kill the subprocess if the test panicked before its graceful drain,
/// so a failing assertion never strands a server (and its workers).
struct KillOnDrop(Child);
impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// The acceptance scenario for supervision: a real `wikisearch serve
/// --shard-workers 2` subprocess answers a query, one worker is killed
/// outright (SIGKILL — no chance to clean up), the supervisor respawns
/// it, the same query answers byte-identically over the healed fleet,
/// and the graceful drain leaves no worker process behind.
#[test]
fn killed_worker_is_respawned_and_no_process_outlives_the_drain() {
    let path = graph_file("respawn");
    let port = free_port();
    let mut server = KillOnDrop(
        Command::new(env!("CARGO_BIN_EXE_wikisearch"))
            .args([
                "serve",
                "--graph",
                &path,
                "--port",
                &port.to_string(),
                "--backend",
                "seq",
                "--workers",
                "2",
                "--shard-workers",
                "2",
                "--heartbeat-ms",
                "50",
                "--cache-capacity",
                "0",
                "--max-requests",
                "2",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawning the serve subprocess"),
    );

    let (mut stream, mut reader) = connect(port);
    let baseline = roundtrip(&mut stream, &mut reader, "QUERY xml sql rdf");
    assert!(baseline.contains("answers"), "{baseline}");
    let doc: serde_json::Value = serde_json::from_str(&baseline).unwrap();
    assert_eq!(doc["degraded"], false, "{baseline}");

    // The fleet on STATS: two live workers, zero respawns so far.
    let stats: serde_json::Value =
        serde_json::from_str(&roundtrip(&mut stream, &mut reader, "STATS")).unwrap();
    let before = fleet_pids(&stats);
    assert_eq!(before.len(), 2, "{stats}");
    assert_eq!(stats["remote"]["workers"]["respawns"], 0u64, "{stats}");
    let mut all_pids = before.clone();

    // Murder one worker. SIGKILL: no drop handlers, no stdin watchdog —
    // only the supervisor can notice.
    let victim = before[0];
    assert!(Command::new("kill")
        .args(["-9", &victim.to_string()])
        .status()
        .unwrap()
        .success());

    // The supervisor notices, respawns, and the breaker re-closes (the
    // 50 ms heartbeat drives open → half-open → closed without queries).
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        assert!(Instant::now() < deadline, "fleet never healed after the kill");
        let stats: serde_json::Value =
            serde_json::from_str(&roundtrip(&mut stream, &mut reader, "STATS")).unwrap();
        let pids = fleet_pids(&stats);
        for p in &pids {
            if !all_pids.contains(p) {
                all_pids.push(*p);
            }
        }
        let respawned = stats["remote"]["workers"]["respawns"].as_u64().unwrap() >= 1;
        let full = pids.len() == 2 && !pids.contains(&victim);
        let closed = stats["remote"]["breaker"].as_array().unwrap().iter().all(|s| s == "closed");
        if respawned && full && closed {
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }

    // Recovery is complete: the healed fleet answers the same bytes.
    let healed = roundtrip(&mut stream, &mut reader, "QUERY xml sql rdf");
    assert_eq!(normalized(&healed), normalized(&baseline), "answers changed after respawn");

    // That was the second success: the server drains gracefully.
    let status = {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if let Some(status) = server.0.try_wait().unwrap() {
                break status;
            }
            assert!(Instant::now() < deadline, "server did not drain after --max-requests");
            std::thread::sleep(Duration::from_millis(50));
        }
    };
    assert!(status.success(), "server exited with {status:?}");

    // No orphans: every worker PID ever reported — the murdered one, its
    // replacement, and the untouched peer — is gone.
    for pid in &all_pids {
        for _ in 0..100 {
            if !pid_alive(*pid) {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(!pid_alive(*pid), "worker {pid} outlived the drain");
    }
    let _ = std::fs::remove_file(path);
}

/// The acceptance scenario for cross-process span stitching: a real
/// `serve --shard-workers 2` subprocess answers EXPLAIN with a
/// per-shard timeline stitched from worker-reported spans — one
/// timeline per shard, the worker-echoed qid matching the response's,
/// wire time the exact remainder of the coordinator's RPC envelope,
/// and the per-level spans reconciling with the trace's level records.
#[test]
fn remote_explain_stitches_per_shard_timelines_across_processes() {
    let path = graph_file("stitch");
    let port = free_port();
    let mut server = KillOnDrop(
        Command::new(env!("CARGO_BIN_EXE_wikisearch"))
            .args([
                "serve",
                "--graph",
                &path,
                "--port",
                &port.to_string(),
                "--backend",
                "seq",
                "--workers",
                "2",
                "--shard-workers",
                "2",
                "--heartbeat-ms",
                "0",
                "--cache-capacity",
                "0",
                "--max-requests",
                "1",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawning the serve subprocess"),
    );
    let (mut stream, mut reader) = connect(port);

    let response = roundtrip(&mut stream, &mut reader, "EXPLAIN xml sql rdf");
    let doc: serde_json::Value = serde_json::from_str(&response).unwrap();
    assert_eq!(doc["answers"][0]["central"], "query language", "{response}");
    let qid = doc["qid"].as_u64().unwrap_or_else(|| panic!("no qid in {response}"));
    assert_eq!(doc["trace"]["qid"], qid, "{response}");

    let levels: Vec<u64> = doc["trace"]["levels"]
        .as_array()
        .unwrap()
        .iter()
        .map(|l| l["level"].as_u64().unwrap())
        .collect();
    assert!(!levels.is_empty(), "{response}");

    let timelines = doc["trace"]["shard_timelines"]
        .as_array()
        .unwrap_or_else(|| panic!("remote EXPLAIN must stitch timelines: {response}"));
    assert_eq!(timelines.len(), 2, "one timeline per shard: {response}");
    for (shard, tl) in timelines.iter().enumerate() {
        assert_eq!(tl["shard"].as_u64().unwrap(), shard as u64, "{response}");
        // The worker process echoed the coordinator's fleet-wide qid.
        assert_eq!(tl["qid"].as_u64().unwrap(), qid, "{response}");
        assert!(tl["rpcs"].as_u64().unwrap() >= 2, "{response}");
        let rpc_us = tl["rpc_us"].as_u64().unwrap();
        let worker_us = tl["worker_us"].as_u64().unwrap();
        let wire_us = tl["wire_us"].as_u64().unwrap();
        // Durations only, never cross-host clocks. The wire share is a
        // saturating subtraction rather than an exact one: on a loaded
        // host a worker's measured sections can overlap the other
        // shard's RPC window, leaving worker_us slightly above rpc_us.
        assert!(rpc_us > 0 && worker_us > 0, "{response}");
        assert_eq!(wire_us, rpc_us.saturating_sub(worker_us), "{response}");
        let spans = tl["spans"].as_array().unwrap();
        let span_sum: u64 = spans
            .iter()
            .map(|s| {
                ["wait_us", "decode_us", "exec_us", "encode_us"]
                    .iter()
                    .map(|f| s[*f].as_u64().unwrap())
                    .sum::<u64>()
            })
            .sum();
        assert_eq!(worker_us, span_sum, "worker total is the sum of its spans: {response}");
        // Reconciliation with the coordinator's level records: exactly
        // one start and one collect, one enqueue per level plus the
        // final empty round, and every expand tagged with a driven level.
        let ops = |op: &str| spans.iter().filter(|s| s["op"] == op).count();
        assert_eq!(ops("start"), 1, "{response}");
        assert_eq!(ops("collect"), 1, "{response}");
        assert_eq!(ops("enqueue"), levels.len() + 1, "{response}");
        for span in spans.iter().filter(|s| s["op"] == "expand") {
            let level = span["level"].as_u64().expect("expand spans are level-tagged");
            assert!(levels.contains(&level), "span level {level} not in {levels:?}: {response}");
        }
    }

    // One served query reaches --max-requests: collect the fleet PIDs,
    // drain, and verify the workers went with the server.
    let stats: serde_json::Value =
        serde_json::from_str(&roundtrip(&mut stream, &mut reader, "STATS")).unwrap();
    let pids = fleet_pids(&stats);
    let answer = roundtrip(&mut stream, &mut reader, "QUERY xml sql rdf");
    assert!(answer.contains("answers"), "{answer}");
    let status = {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if let Some(status) = server.0.try_wait().unwrap() {
                break status;
            }
            assert!(Instant::now() < deadline, "server did not drain after --max-requests");
            std::thread::sleep(Duration::from_millis(50));
        }
    };
    assert!(status.success(), "server exited with {status:?}");
    for pid in &pids {
        for _ in 0..100 {
            if !pid_alive(*pid) {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(!pid_alive(*pid), "worker {pid} outlived the drain");
    }
    let _ = std::fs::remove_file(path);
}

/// Start an in-process server thread (leaked; dies with the test
/// process) and return its port.
fn spawn_inprocess(argv_line: String) {
    std::thread::spawn(move || {
        let argv: Vec<String> = argv_line.split_whitespace().map(String::from).collect();
        let mut out = Vec::new();
        let code = wikisearch_cli::run(&argv, &mut out);
        assert_eq!(code, 0, "{}", String::from_utf8_lossy(&out));
    });
}

/// Build the shared 4-node graph, write it to disk, and spawn one live
/// in-process worker for shard `live_index` of a 2-shard plan.
fn graph_and_live_worker(tag: &str, live_index: usize) -> (String, SocketAddr) {
    let path = graph_file(tag);
    let mut b = kgraph::GraphBuilder::new();
    let x = b.add_node("x", "xml");
    let q = b.add_node("q", "query language");
    let s = b.add_node("s", "sql");
    let r = b.add_node("r", "rdf");
    b.add_edge(x, q, "rel");
    b.add_edge(s, q, "rel");
    b.add_edge(r, q, "rel");
    let graph = b.build();
    let addr = central::ShardWorker::spawn_local(
        &graph,
        2,
        live_index,
        central::shard::DEFAULT_PARTITION_SEED,
    );
    (path, addr)
}

/// Default policy: a fleet with an unreachable shard refuses queries
/// with a structured `shard_unavailable` error — never a silent partial
/// answer — and the refusal is accounted on STATS at every layer.
#[test]
fn unreachable_shard_sheds_queries_with_a_structured_error() {
    let (path, live) = graph_and_live_worker("shed", 0);
    let dead = dead_addr();
    let port = free_port();
    spawn_inprocess(format!(
        "serve --graph {path} --port {port} --backend seq --workers 2 \
         --shard-addr {live},{dead} --rpc-timeout-ms 300 --rpc-retries 1 \
         --heartbeat-ms 0 --cache-capacity 0"
    ));
    let (mut stream, mut reader) = connect(port);

    let response = roundtrip(&mut stream, &mut reader, "QUERY xml sql rdf");
    let doc: serde_json::Value = serde_json::from_str(&response).unwrap();
    assert_eq!(doc["error"], "shard_unavailable", "{response}");
    assert!(doc["detail"].as_str().unwrap().contains("shard"), "{response}");

    let stats: serde_json::Value =
        serde_json::from_str(&roundtrip(&mut stream, &mut reader, "STATS")).unwrap();
    assert!(stats["shard_unavailable"].as_u64().unwrap() >= 1, "{stats}");
    assert!(stats["engine"]["shard_unavailable"].as_u64().unwrap() >= 1, "{stats}");
    assert_eq!(stats["remote"]["degraded_queries"], 0u64, "{stats}");
    assert_eq!(stats["served"], 0u64, "a refused query must not count as served: {stats}");
    // Attached fleet (no supervisor): the workers block is null.
    assert!(stats["remote"]["workers"].is_null(), "{stats}");
    writeln!(stream, "QUIT").unwrap();
    let _ = std::fs::remove_file(path);
}

/// Opt-in degradation: with `--degraded-answers true` the reachable
/// shards answer best-effort, the response is explicitly marked
/// `degraded`, and STATS counts the degraded query — degraded is never
/// silent.
#[test]
fn degraded_answers_are_served_and_marked_when_opted_in() {
    let (path, live) = graph_and_live_worker("degraded", 0);
    let dead = dead_addr();
    let port = free_port();
    spawn_inprocess(format!(
        "serve --graph {path} --port {port} --backend seq --workers 2 \
         --shard-addr {live},{dead} --degraded-answers true --rpc-timeout-ms 300 \
         --rpc-retries 1 --heartbeat-ms 0 --cache-capacity 0"
    ));
    let (mut stream, mut reader) = connect(port);

    let response = roundtrip(&mut stream, &mut reader, "QUERY xml sql rdf");
    let doc: serde_json::Value = serde_json::from_str(&response).unwrap();
    assert!(doc.get("error").is_none(), "degraded mode must answer: {response}");
    assert_eq!(doc["degraded"], true, "{response}");

    let stats: serde_json::Value =
        serde_json::from_str(&roundtrip(&mut stream, &mut reader, "STATS")).unwrap();
    assert!(stats["remote"]["degraded_queries"].as_u64().unwrap() >= 1, "{stats}");
    assert_eq!(stats["shard_unavailable"], 0u64, "{stats}");
    assert_eq!(stats["served"], 1u64, "a degraded answer is still an answer: {stats}");
    writeln!(stream, "QUIT").unwrap();
    let _ = std::fs::remove_file(path);
}

/// Remote flag validation: the combinations the docs rule out are
/// rejected up front with actionable errors, not at first query.
#[test]
fn remote_flag_misuse_is_rejected_up_front() {
    let path = graph_file("flags");
    for (argv, needle) in [
        (
            format!("serve --graph {path} --shard-workers 2 --shard-addr 127.0.0.1:1"),
            "mutually exclusive",
        ),
        (
            format!("serve --graph {path} --shard-workers 2 --shards 2"),
            "replaces --shards",
        ),
        (
            format!("serve --graph {path} --shard-workers 2 --batch-window-us 100"),
            "--batch-window-us",
        ),
        (format!("serve --graph {path} --degraded-answers true"), "requires remote"),
        (format!("serve --graph {path} --rpc-retries 2"), "requires remote"),
        (format!("serve --graph {path} --shard-addr not-an-addr"), "--shard-addr"),
    ] {
        let argv: Vec<String> = argv.split_whitespace().map(String::from).collect();
        let mut out = Vec::new();
        let code = wikisearch_cli::run(&argv, &mut out);
        let log = String::from_utf8(out).unwrap();
        assert_eq!(code, 1, "accepted {argv:?}: {log}");
        assert!(log.contains(needle), "error for {argv:?} missing {needle:?}: {log}");
    }
    let _ = std::fs::remove_file(path);
}

/// Network-shaped chaos (feature `fault-inject`): a client whose queries
/// make a worker drop connections, stall past the RPC deadline, or
/// answer garbage frames gets structured errors — and a well-behaved
/// client interleaved with it keeps getting byte-identical answers,
/// with the fleet fully recovered (breakers closed) afterwards.
#[cfg(feature = "fault-inject")]
#[test]
fn misbehaving_worker_queries_cannot_perturb_well_behaved_ones() {
    let path = graph_file("chaos");
    let mut b = kgraph::GraphBuilder::new();
    let x = b.add_node("x", "xml");
    let q = b.add_node("q", "query language");
    let s = b.add_node("s", "sql");
    let r = b.add_node("r", "rdf");
    b.add_edge(x, q, "rel");
    b.add_edge(s, q, "rel");
    b.add_edge(r, q, "rel");
    let graph = b.build();
    let w0 =
        central::ShardWorker::spawn_local(&graph, 2, 0, central::shard::DEFAULT_PARTITION_SEED);
    let w1 =
        central::ShardWorker::spawn_local(&graph, 2, 1, central::shard::DEFAULT_PARTITION_SEED);
    let port = free_port();
    spawn_inprocess(format!(
        "serve --graph {path} --port {port} --backend seq --workers 4 \
         --shard-addr {w0},{w1} --rpc-timeout-ms 400 --rpc-retries 2 \
         --heartbeat-ms 50 --cache-capacity 0"
    ));
    let (mut stream, mut reader) = connect(port);
    let baseline = normalized(&roundtrip(&mut stream, &mut reader, "QUERY xml sql rdf"));

    // Each chaos token makes every worker misbehave *for that query
    // only*: the connection is poisoned, retried, and finally given up
    // on — a structured refusal, never a hang and never a wrong answer.
    for chaos in ["fault0drop xml", "fault0stall-conn xml", "fault0garbage-frame xml"] {
        let response = roundtrip(&mut stream, &mut reader, &format!("QUERY {chaos}"));
        let doc: serde_json::Value = serde_json::from_str(&response).unwrap();
        assert_eq!(doc["error"], "shard_unavailable", "chaos {chaos:?}: {response}");

        // The very next well-behaved query answers the baseline bytes.
        let good = normalized(&roundtrip(&mut stream, &mut reader, "QUERY xml sql rdf"));
        assert_eq!(good, baseline, "good query perturbed after {chaos:?}");
    }

    // Full recovery: breakers all closed again (the heartbeat probes the
    // workers back to health), retries were actually exercised, and
    // every refusal was accounted.
    let deadline = Instant::now() + Duration::from_secs(20);
    let stats = loop {
        let stats: serde_json::Value =
            serde_json::from_str(&roundtrip(&mut stream, &mut reader, "STATS")).unwrap();
        let closed = stats["remote"]["breaker"].as_array().unwrap().iter().all(|s| s == "closed");
        if closed {
            break stats;
        }
        assert!(Instant::now() < deadline, "breakers never re-closed: {stats}");
        std::thread::sleep(Duration::from_millis(100));
    };
    assert!(stats["remote"]["retries"].as_u64().unwrap() >= 1, "{stats}");
    assert!(stats["shard_unavailable"].as_u64().unwrap() >= 3, "{stats}");
    let _ = std::fs::remove_file(path);
}
