//! Lock-free soak test: on a synthetic KB three orders of magnitude
//! larger than the proptest graphs, the parallel engines must agree with
//! the sequential reference answer-for-answer, across repeated runs and
//! thread counts. This is Theorem V.2 under real contention: thousands of
//! frontier tasks racing on the shared matrix.

use central::engine::{DynParEngine, GpuStyleEngine, KeywordSearchEngine, ParCpuEngine, SeqEngine};
use central::{SearchParams, SearchSession};
use datagen::synthetic::SyntheticConfig;
use datagen::QueryWorkload;
use textindex::{InvertedIndex, ParsedQuery};

#[test]
fn parallel_engines_agree_on_a_large_graph_under_contention() {
    let mut cfg = SyntheticConfig::tiny(1234);
    cfg.num_entities = 2500;
    let ds = cfg.generate();
    let index = InvertedIndex::build(&ds.graph);
    let params = SearchParams::default().with_average_distance(2.5).with_top_k(10);

    let mut workload = QueryWorkload::new(9);
    let queries: Vec<ParsedQuery> =
        workload.batch(5, 3).iter().map(|q| ParsedQuery::parse(&index, q)).collect();

    let seq = SeqEngine::new();
    let engines: Vec<Box<dyn KeywordSearchEngine>> = vec![
        Box::new(ParCpuEngine::new(8)),
        Box::new(GpuStyleEngine::new(8)),
        Box::new(DynParEngine::new(8)),
    ];
    for (qi, query) in queries.iter().enumerate() {
        let reference = seq.search(&ds.graph, query, &params);
        for answer in &reference.answers {
            answer.check_invariants().unwrap();
        }
        for engine in &engines {
            // Two runs each: agreement and determinism under contention.
            for round in 0..2 {
                let out = engine.search(&ds.graph, query, &params);
                assert_eq!(
                    out.answers.len(),
                    reference.answers.len(),
                    "query {qi} round {round}: answer count for {}",
                    engine.name()
                );
                for (a, b) in out.answers.iter().zip(&reference.answers) {
                    assert_eq!(a.central, b.central, "query {qi}: {}", engine.name());
                    assert_eq!(a.nodes, b.nodes, "query {qi}: {}", engine.name());
                    assert_eq!(a.edges, b.edges, "query {qi}: {}", engine.name());
                    assert_eq!(a.keyword_edges, b.keyword_edges, "query {qi}: {}", engine.name());
                }
                assert_eq!(
                    out.stats.central_candidates,
                    reference.stats.central_candidates,
                    "query {qi}: top-(k,d) cohort for {}",
                    engine.name()
                );
                assert_eq!(out.stats.last_level, reference.stats.last_level);
            }
        }
    }
}

/// Session soak: ONE `SearchSession` is hammered with a stream of
/// sequential queries while the executing engine and its thread count
/// keep changing underneath it. Every warm answer must match a fresh
/// sequential search of the same query — any stale-epoch leakage (a
/// matrix cell, frontier flag, central flag, or CPU-Par-d node record
/// surviving from an earlier query) would corrupt hitting levels and
/// diverge from the cold reference.
#[test]
fn one_session_survives_a_query_stream_across_thread_counts() {
    let mut cfg = SyntheticConfig::tiny(77);
    cfg.num_entities = 1200;
    let ds = cfg.generate();
    let index = InvertedIndex::build(&ds.graph);
    let params = SearchParams::default().with_average_distance(2.5).with_top_k(8);

    let mut workload = QueryWorkload::new(31);
    let queries: Vec<ParsedQuery> =
        workload.batch(4, 3).iter().map(|q| ParsedQuery::parse(&index, q)).collect();
    let seq = SeqEngine::new();
    let references: Vec<_> = queries.iter().map(|q| seq.search(&ds.graph, q, &params)).collect();

    let mut session = SearchSession::new();
    let mut runs = 0u64;
    for threads in [1usize, 2, 4, 8] {
        let engines: Vec<Box<dyn KeywordSearchEngine>> = vec![
            Box::new(SeqEngine::new()),
            Box::new(ParCpuEngine::new(threads)),
            Box::new(GpuStyleEngine::new(threads)),
            Box::new(DynParEngine::new(threads)),
        ];
        for engine in &engines {
            for (qi, query) in queries.iter().enumerate() {
                let out = engine.search_session(&mut session, &ds.graph, query, &params);
                if query.num_keywords() > 0 {
                    runs += 1;
                }
                let reference = &references[qi];
                assert_eq!(
                    out.answers.len(),
                    reference.answers.len(),
                    "threads {threads} query {qi}: answer count for {}",
                    engine.name()
                );
                for (a, b) in out.answers.iter().zip(&reference.answers) {
                    assert_eq!(
                        a.central,
                        b.central,
                        "threads {threads} query {qi}: {}",
                        engine.name()
                    );
                    assert_eq!(a.nodes, b.nodes, "threads {threads} query {qi}: {}", engine.name());
                    assert_eq!(a.edges, b.edges, "threads {threads} query {qi}: {}", engine.name());
                    assert_eq!(
                        a.keyword_edges,
                        b.keyword_edges,
                        "threads {threads} query {qi}: {}",
                        engine.name()
                    );
                }
                assert_eq!(
                    out.stats.central_candidates,
                    reference.stats.central_candidates,
                    "threads {threads} query {qi}: top-(k,d) cohort for {}",
                    engine.name()
                );
                assert_eq!(out.stats.last_level, reference.stats.last_level);
            }
        }
    }
    // Every non-empty query in the stream went through the one session.
    assert_eq!(session.queries_run(), runs);
    assert!(session.queries_run() > 0);
}

/// Cache soak: 8 threads hammer one `Arc<WikiSearch>` whose result cache
/// is deliberately too small for the working set, so entries are
/// inserted, evicted and re-inserted continuously while hits race
/// misses on every shard. The test asserts the three things that must
/// survive that churn: no panics or deadlocks, exact counter accounting
/// (`hits + misses == lookups`, byte usage within budget), and — query
/// for query — answers identical to a sequential uncached oracle.
#[test]
fn concurrent_cached_searches_match_a_sequential_oracle() {
    let mut cfg = SyntheticConfig::tiny(4242);
    cfg.num_entities = 900;
    let ds = cfg.generate();

    let mut workload = QueryWorkload::new(17);
    let queries: Vec<String> = workload.batch(3, 16);

    // Oracle: sequential, uncached.
    let oracle = wikisearch_engine::WikiSearch::build_with(
        ds.graph.clone(),
        wikisearch_engine::Backend::Sequential,
    );
    let expected: Vec<String> = queries.iter().map(|q| result_digest(&oracle.search(q))).collect();

    // Device under test: parallel backend behind a cache sized to a
    // third of the working set, split over 2 shards so eviction churn is
    // constant. First measure the stream's total entry footprint with a
    // roomy cache, then rebuild with the tight one.
    let mut probe = wikisearch_engine::WikiSearch::build_with(
        ds.graph.clone(),
        wikisearch_engine::Backend::Sequential,
    );
    probe.set_cache_config(64 << 20, 2);
    for q in &queries {
        probe.search(q);
    }
    let working_set = probe.cache_stats().unwrap().bytes.max(1);

    let mut ws = wikisearch_engine::WikiSearch::build_with(
        ds.graph.clone(),
        wikisearch_engine::Backend::ParCpu(4),
    );
    ws.set_cache_config(working_set / 3, 2);
    let ws = std::sync::Arc::new(ws);

    let threads = 8;
    let rounds = 6;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let ws = std::sync::Arc::clone(&ws);
            let queries = &queries;
            let expected = &expected;
            scope.spawn(move || {
                // Deterministic per-thread schedule: every thread walks
                // the whole query list, each starting at a different
                // offset, so the same key is concurrently looked up,
                // inserted and evicted across threads.
                for r in 0..rounds {
                    for i in 0..queries.len() {
                        let qi = (i + t * 3 + r) % queries.len();
                        let got = result_digest(&ws.search(&queries[qi]));
                        assert_eq!(got, expected[qi], "thread {t} round {r} query {qi}");
                    }
                }
            });
        }
    });

    let stats = ws.cache_stats().unwrap();
    assert_eq!(stats.hits + stats.misses, stats.lookups, "{stats:?}");
    assert!(stats.bytes <= stats.capacity_bytes, "{stats:?}");
    assert!(stats.lookups > 0, "{stats:?}");
    assert!(stats.evictions > 0, "capacity must be tight enough to churn: {stats:?}");
}

/// Everything answer-relevant about one search result, as a comparable
/// string (timings excluded).
fn result_digest(r: &wikisearch_engine::WikiSearchResult) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    write!(s, "groups:{:?} unmatched:{:?} ", r.query.groups, r.query.unmatched).unwrap();
    write!(
        s,
        "stats:{}/{}/{:?} ",
        r.stats.last_level, r.stats.central_candidates, r.stats.trace
    )
    .unwrap();
    for a in &r.answers {
        write!(
            s,
            "[c:{:?} d:{} n:{:?} e:{:?} kn:{:?} ke:{:?} s:{}]",
            a.central,
            a.depth,
            a.nodes,
            a.edges,
            a.keyword_nodes,
            a.keyword_edges,
            a.score.to_bits()
        )
        .unwrap();
    }
    s
}
