//! # eval — effectiveness metrics and experiment-runner utilities
//!
//! * [`precision`] — top-k precision over ranked answers (the metric of
//!   the paper's Figs. 11–12), with the planted-ground-truth judge from
//!   `datagen` standing in for the paper's manual assessment.
//! * [`runner`] — shared harness plumbing: wall-clock measurement over
//!   query batches, aligned table printing, and machine-readable JSON
//!   records under `target/experiments/` so EXPERIMENTS.md numbers stay
//!   traceable.

#![warn(missing_docs)]

pub mod precision;
pub mod runner;

pub use precision::{top_k_precision, EffectivenessReport};
pub use runner::{ExperimentSink, Table};
