//! Property suite for `central::metrics::LogHistogram` — the data
//! structure every latency/expansion percentile in STATS, METRICS and
//! the bench harness is computed from.
//!
//! Checked properties:
//!
//! * every value lands in the bucket whose bounds contain it;
//! * snapshot merge is associative and commutative (per-thread or
//!   per-process histograms fold into one aggregate in any order);
//! * percentiles are monotone in `p` and conservative (the reported
//!   value is at least the true rank-statistic, at most 2× above it);
//! * concurrent recording from 8 threads matches a sequential oracle
//!   exactly (the relaxed atomics lose nothing).

use central::metrics::{bucket_index, bucket_upper_bound, LogHistogram, BUCKETS};
use central::HistogramSnapshot;
use proptest::prelude::*;

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = LogHistogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn every_value_lands_inside_its_bucket(v in 0u64..=u64::MAX) {
        let i = bucket_index(v);
        prop_assert!(i < BUCKETS);
        prop_assert!(v <= bucket_upper_bound(i), "{v} above bucket {i}");
        if i > 0 && i < BUCKETS - 1 {
            prop_assert!(v > bucket_upper_bound(i - 1), "{v} below bucket {i}");
        }
    }

    #[test]
    fn merge_is_commutative(
        a in proptest::collection::vec(0u64..=u64::MAX, 0..50),
        b in proptest::collection::vec(0u64..=u64::MAX, 0..50),
    ) {
        let (sa, sb) = (snapshot_of(&a), snapshot_of(&b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(0u64..=u64::MAX, 0..30),
        b in proptest::collection::vec(0u64..=u64::MAX, 0..30),
        c in proptest::collection::vec(0u64..=u64::MAX, 0..30),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        // (a ⊕ b) ⊕ c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        // a ⊕ (b ⊕ c)
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn merge_equals_recording_the_concatenation(
        a in proptest::collection::vec(0u64..=u64::MAX, 0..50),
        b in proptest::collection::vec(0u64..=u64::MAX, 0..50),
    ) {
        let mut merged = snapshot_of(&a);
        merged.merge(&snapshot_of(&b));
        let mut all = a.clone();
        all.extend_from_slice(&b);
        prop_assert_eq!(merged, snapshot_of(&all));
    }

    #[test]
    fn percentile_is_monotone_in_p(
        values in proptest::collection::vec(0u64..=u64::MAX, 1..80),
        ps in proptest::collection::vec(0.0f64..1.0, 2..10),
    ) {
        let s = snapshot_of(&values);
        let mut sorted = ps.clone();
        sorted.sort_by(f64::total_cmp);
        let mut last = 0u64;
        for p in sorted {
            let v = s.percentile(p);
            prop_assert!(v >= last, "p{p}: {v} < {last}");
            last = v;
        }
    }

    #[test]
    fn percentile_is_a_conservative_rank_statistic(
        values in proptest::collection::vec(0u64..1_000_000, 1..80),
        p in 0.0f64..1.0,
    ) {
        let s = snapshot_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((p * sorted.len() as f64).ceil() as usize).max(1).min(sorted.len());
        let exact = sorted[rank - 1];
        let reported = s.percentile(p);
        // Never under-reports, and stays within the bucket's 2× bound.
        prop_assert!(reported >= exact, "reported {reported} < exact {exact}");
        prop_assert!(
            reported <= exact.saturating_mul(2).max(1),
            "reported {reported} > 2x exact {exact}"
        );
    }

    #[test]
    fn count_sum_and_mean_are_exact(values in proptest::collection::vec(0u64..1_000_000, 0..80)) {
        let s = snapshot_of(&values);
        let sum: u64 = values.iter().sum();
        prop_assert_eq!(s.count, values.len() as u64);
        prop_assert_eq!(s.sum, sum);
        if !values.is_empty() {
            let mean = sum as f64 / values.len() as f64;
            prop_assert!((s.mean() - mean).abs() < 1e-6);
        }
    }
}

#[test]
fn concurrent_recording_from_eight_threads_matches_a_sequential_oracle() {
    // Deterministic per-thread value streams (no shared RNG): thread t
    // records a mix of tiny, mid-range and huge values.
    let per_thread = 5_000u64;
    let value = |t: u64, i: u64| match i % 3 {
        0 => t + i,
        1 => (t + 1) * (i + 1) * 1000,
        _ => 1u64 << ((t + i) % 64),
    };

    let concurrent = LogHistogram::new();
    std::thread::scope(|scope| {
        for t in 0..8u64 {
            let concurrent = &concurrent;
            scope.spawn(move || {
                for i in 0..per_thread {
                    concurrent.record(value(t, i));
                }
            });
        }
    });

    let oracle = LogHistogram::new();
    for t in 0..8u64 {
        for i in 0..per_thread {
            oracle.record(value(t, i));
        }
    }
    assert_eq!(concurrent.snapshot(), oracle.snapshot());
    assert_eq!(concurrent.count(), 8 * per_thread);
}
