//! WikiSearch service REPL: an interactive command line over a synthetic
//! Wikidata-like knowledge base — the offline analogue of the paper's
//! online service at NUS.
//!
//! ```text
//! cargo run --release -p wikisearch-examples --bin wikisearch_repl
//! ```
//!
//! Commands:
//!
//! * `<keywords…>` — run a search, print the top answers;
//! * `:alpha <v>` — set α (degree-of-summary preference, Sec. IV);
//! * `:topk <k>` — set the number of answers;
//! * `:backend seq|cpu|gpu|dyn` — switch the engine;
//! * `:quit` — exit.
//!
//! Reads queries from stdin, so it can also be scripted:
//! `echo "machine learning inference" | cargo run -p wikisearch-examples --bin wikisearch_repl`

use datagen::synthetic::SyntheticConfig;
use std::io::{self, BufRead, Write};
use wikisearch_engine::{Backend, WikiSearch};

fn main() {
    println!("Generating synthetic Wikidata-like KB (set WIKISEARCH_SCALE to resize)...");
    let mut config = SyntheticConfig::wiki2017_sim();
    config.num_entities = config.num_entities.min(20_000); // keep the REPL snappy
    let ds = config.generate();
    println!(
        "dataset {}: {} nodes / {} edges",
        ds.config.name,
        ds.graph.num_nodes(),
        ds.graph.num_directed_edges()
    );
    let mut ws = WikiSearch::build_with(ds.graph, Backend::ParCpu(4));
    println!(
        "index: {} terms; estimated A = {:.2}; defaults: α = {}, top-k = {}",
        ws.index().num_terms(),
        ws.params().average_distance,
        ws.params().alpha,
        ws.params().top_k
    );
    println!("type keywords (e.g. \"machine learning inference\"), :help for commands\n");

    let stdin = io::stdin();
    loop {
        print!("wikisearch> ");
        let _ = io::stdout().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(cmd) = line.strip_prefix(':') {
            let mut parts = cmd.split_whitespace();
            match (parts.next(), parts.next()) {
                (Some("quit"), _) | (Some("q"), _) => break,
                (Some("help"), _) => {
                    println!(":alpha <v> | :topk <k> | :backend seq|cpu|gpu|dyn | :quit");
                }
                (Some("alpha"), Some(v)) => match v.parse::<f32>() {
                    Ok(a) if a > 0.0 && a < 1.0 => {
                        let p = ws.params().clone().with_alpha(a);
                        ws.set_params(p);
                        println!("α = {a}");
                    }
                    _ => println!("alpha must be in (0,1)"),
                },
                (Some("topk"), Some(v)) => match v.parse::<usize>() {
                    Ok(k) if k > 0 => {
                        let p = ws.params().clone().with_top_k(k);
                        ws.set_params(p);
                        println!("top-k = {k}");
                    }
                    _ => println!("topk must be >= 1"),
                },
                (Some("backend"), Some(which)) => {
                    let backend = match which {
                        "seq" => Some(Backend::Sequential),
                        "cpu" => Some(Backend::ParCpu(4)),
                        "gpu" => Some(Backend::GpuStyle(4)),
                        "dyn" => Some(Backend::DynPar(4)),
                        _ => None,
                    };
                    match backend {
                        Some(b) => {
                            ws.set_backend(b);
                            println!("backend = {which}");
                        }
                        None => println!("unknown backend {which:?}"),
                    }
                }
                _ => println!("unknown command; :help"),
            }
            continue;
        }

        let result = ws.search(line);
        if !result.query.unmatched.is_empty() {
            println!("(no matches for: {})", result.query.unmatched.join(", "));
        }
        if result.answers.is_empty() {
            println!("no answers");
            continue;
        }
        println!(
            "{} answers in {:.2} ms (kwf {:.0})",
            result.answers.len(),
            result.profile.total().as_secs_f64() * 1e3,
            result.kwf
        );
        for (rank, answer) in result.answers.iter().take(5).enumerate() {
            println!("#{rank}:");
            print!("{}", ws.render_answer(answer));
        }
        println!();
    }
    println!("bye");
}
