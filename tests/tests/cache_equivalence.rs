//! The cache form of the workspace's central correctness property: a
//! [`WikiSearch`] with the sharded result cache enabled must be
//! *observably identical* to one without it — same answers, same
//! per-keyword hitting paths, same scores bit-for-bit, same statistics —
//! on arbitrary graphs and arbitrary query streams, for all four engine
//! backends.
//!
//! The streams are adversarial for a normalized cache key: besides fresh
//! queries they contain exact repeats, word-order permutations, case
//! flips, stopword injections and duplicated keywords — all of which
//! normalize to the same key and therefore exercise the hit path,
//! including the keyword-order reorientation of cached answers — plus
//! per-request parameter flips that must *never* share an entry.

use proptest::prelude::*;
use std::fmt::Write as _;
use wikisearch_engine::{Backend, WikiSearch, WikiSearchResult};

/// Same overlap-heavy pool the engine-equivalence property uses.
const WORDS: &[&str] = &["alpha", "beta", "gamma", "delta", "omega", "sigma", "kappa", "lambda"];

/// How a stream step derives its raw query string.
#[derive(Debug, Clone, Copy)]
enum Variant {
    /// The base query joined as-is (first use computes and populates).
    Fresh,
    /// Byte-identical repeat of the base string.
    Exact,
    /// Words reversed and upper-cased: same normalized key, different
    /// keyword order — the hit must reorient per-keyword answer parts.
    ReversedUpper,
    /// Stopwords spliced around and between the words; the analyzer
    /// drops them, so the key is unchanged.
    Stopworded,
    /// Every word doubled; normalization dedups, so the key is
    /// unchanged.
    Doubled,
}

const VARIANTS: [Variant; 5] = [
    Variant::Fresh,
    Variant::Exact,
    Variant::ReversedUpper,
    Variant::Stopworded,
    Variant::Doubled,
];

#[derive(Debug, Clone)]
struct Case {
    nodes: usize,
    texts: Vec<Vec<usize>>,     // word indices per node
    edges: Vec<(usize, usize)>, // node index pairs
    /// Base queries as word-index lists; streams draw from these.
    queries: Vec<Vec<usize>>,
    /// The stream: (base query index, variant index, params flip).
    stream: Vec<(usize, usize, bool)>,
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (2usize..24, 1usize..4).prop_flat_map(|(nodes, nqueries)| {
        let texts =
            proptest::collection::vec(proptest::collection::vec(0usize..WORDS.len(), 1..3), nodes);
        let edges = proptest::collection::vec((0usize..nodes, 0usize..nodes), 1..50);
        let queries = proptest::collection::vec(
            proptest::collection::vec(0usize..WORDS.len(), 2..4),
            nqueries,
        );
        // A `bool` value is itself the any-bool strategy in the shim.
        let stream =
            proptest::collection::vec((0usize..nqueries, 0usize..VARIANTS.len(), false), 3..8);
        (texts, edges, queries, stream).prop_map(move |(texts, edges, queries, stream)| Case {
            nodes,
            texts,
            edges,
            queries,
            stream,
        })
    })
}

fn build_graph(case: &Case) -> kgraph::KnowledgeGraph {
    let mut b = kgraph::GraphBuilder::new();
    for (i, words) in case.texts.iter().enumerate() {
        let text: Vec<&str> = words.iter().map(|&w| WORDS[w]).collect();
        b.add_node(&format!("n{i}"), &text.join(" "));
    }
    for (idx, &(s, d)) in case.edges.iter().enumerate() {
        if s != d {
            let s = b.node(&format!("n{s}")).unwrap();
            let d = b.node(&format!("n{d}")).unwrap();
            b.add_edge(s, d, if idx % 3 == 0 { "p" } else { "q" });
        }
    }
    let _ = case.nodes;
    b.build()
}

/// Render one stream step's raw query string.
fn raw_query(base: &[usize], variant: Variant) -> String {
    let words: Vec<&str> = base.iter().map(|&w| WORDS[w]).collect();
    match variant {
        Variant::Fresh | Variant::Exact => words.join(" "),
        Variant::ReversedUpper => {
            let mut rev: Vec<String> = words.iter().map(|w| w.to_uppercase()).collect();
            rev.reverse();
            rev.join(" ")
        }
        Variant::Stopworded => format!("the {} of", words.join(" and the ")),
        Variant::Doubled => words.iter().flat_map(|w| [*w, *w]).collect::<Vec<_>>().join(" "),
    }
}

/// Everything observable about one search result except timing, as one
/// comparable string — the raw query echo, keyword grouping, unmatched
/// words, answers with their order-sensitive per-keyword parts, score
/// bits, and the full statistics block including the level trace.
fn digest(r: &WikiSearchResult) -> String {
    let mut s = String::new();
    write!(
        s,
        "groups:{:?} unmatched:{:?} kwf:{} ",
        r.query.groups, r.query.unmatched, r.kwf
    )
    .unwrap();
    write!(
        s,
        "stats:{}/{}/{}/{:?} ",
        r.stats.last_level, r.stats.central_candidates, r.stats.peak_frontier, r.stats.trace
    )
    .unwrap();
    for a in &r.answers {
        write!(
            s,
            "[c:{:?} d:{} n:{:?} e:{:?} kn:{:?} ke:{:?} s:{}]",
            a.central,
            a.depth,
            a.nodes,
            a.edges,
            a.keyword_nodes,
            a.keyword_edges,
            a.score.to_bits()
        )
        .unwrap();
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// For every backend, every step of an adversarial query stream
    /// returns exactly what an uncached engine returns for the same raw
    /// string and parameters, and the cache's own accounting stays
    /// consistent throughout.
    #[test]
    fn cached_engine_is_observably_identical_to_uncached(case in case_strategy()) {
        let backends =
            [Backend::Sequential, Backend::ParCpu(3), Backend::GpuStyle(3), Backend::DynPar(3)];
        for backend in backends {
            let uncached = WikiSearch::build_with(build_graph(&case), backend);
            let mut cached = WikiSearch::build_with(build_graph(&case), backend);
            cached.set_cache_capacity(1 << 20);
            let params_a = uncached.params().clone();
            let params_b = params_a.clone().with_top_k(1).with_lambda(0.0);

            // The generated stream, plus a forced tail that guarantees
            // the hit path runs at least twice per case: an exact repeat
            // and a reordering of the stream's first step.
            let mut steps = case.stream.clone();
            let first = steps[0];
            steps.push((first.0, 1, first.2));
            steps.push((first.0, 2, first.2));

            for (si, &(qi, vi, flip)) in steps.iter().enumerate() {
                let raw = raw_query(&case.queries[qi], VARIANTS[vi]);
                let params = if flip { &params_b } else { &params_a };
                let want = uncached.search_with_params(&raw, params);
                let got = cached.search_with_params(&raw, params);
                prop_assert_eq!(
                    digest(&got),
                    digest(&want),
                    "step {} ({:?}, {:?}) diverged on {:?}",
                    si,
                    VARIANTS[vi],
                    flip,
                    raw
                );
            }

            let stats = cached.cache_stats().unwrap();
            prop_assert_eq!(stats.hits + stats.misses, stats.lookups, "{:?}", backend);
            prop_assert!(stats.bytes <= stats.capacity_bytes, "{:?}", backend);
            // The forced tail repeats the first step's key, so unless
            // that base query matches no keyword of this graph at all
            // (an empty parse bypasses the cache) the stream must have
            // produced at least one hit per tail step.
            let first_raw = raw_query(&case.queries[first.0], VARIANTS[0]);
            if cached.parse(&first_raw).num_keywords() > 0 {
                prop_assert!(stats.hits >= 2, "no hit for repeated {:?}", first_raw);
            }
        }
    }
}
