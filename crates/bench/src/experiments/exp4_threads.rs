//! Exp-4 (Figs. 9–10): per-phase running time vs `Tnum` on both datasets
//! for CPU-Par, CPU-Par-d and the GPU-structured engine. `Tnum = 1` uses
//! the sequential reference engine, exactly as in the paper ("Tnum = 1
//! means we are running everything sequentially on CPU").
//!
//! Note: the paper sweeps 1..50 threads on a 52-core Xeon; sweep bounds
//! here come from `WIKISEARCH_THREADS` and the scaling *shape* (and the
//! lock penalty of CPU-Par-d) is the reproduced signal.

use crate::experiments::{mean_profile_over, sequential_engine};
use crate::{queries_per_point, thread_sweep, PreparedDataset};
use central::engine::{DynParEngine, GpuStyleEngine, KeywordSearchEngine, ParCpuEngine};
use datagen::QueryWorkload;
use eval::runner::{ms, ExperimentSink};
use eval::Table;
use serde_json::json;
use textindex::ParsedQuery;

/// Run Exp-4 on both datasets.
pub fn run() -> serde_json::Value {
    let sweep = thread_sweep();
    let nq = queries_per_point();
    println!("== Exp-4 (Figs. 9–10): vary Tnum {sweep:?} | {nq} queries/point ==");
    let mut records = Vec::new();
    for ds in PreparedDataset::both() {
        println!("\n-- dataset {} --", ds.name);
        let params = ds.params();
        let mut workload = QueryWorkload::new(4000);
        let raw = workload.batch(6, nq);
        let queries: Vec<ParsedQuery> =
            raw.iter().map(|r| ParsedQuery::parse(&ds.index, r)).collect();

        let mut dataset_json = Vec::new();
        for &t in &sweep {
            let engines: Vec<Box<dyn KeywordSearchEngine>> = if t == 1 {
                vec![sequential_engine(), Box::new(DynParEngine::new(1))]
            } else {
                vec![
                    Box::new(ParCpuEngine::new(t)),
                    Box::new(GpuStyleEngine::new(t)),
                    Box::new(DynParEngine::new(t)),
                ]
            };
            let mut table = Table::new(vec![
                "engine",
                "init",
                "enqueue",
                "identify",
                "expansion",
                "top-down",
                "total(ms)",
            ]);
            let mut point_json = Vec::new();
            for e in &engines {
                let p = mean_profile_over(e.as_ref(), &ds.graph, &queries, &params);
                table.row(vec![
                    e.name().to_string(),
                    ms(p.init),
                    ms(p.enqueue),
                    ms(p.identify),
                    ms(p.expansion),
                    ms(p.top_down),
                    ms(p.total()),
                ]);
                point_json.push(json!({
                    "engine": e.name(),
                    "expansion_ms": p.expansion.as_secs_f64() * 1e3,
                    "identify_ms": p.identify.as_secs_f64() * 1e3,
                    "top_down_ms": p.top_down.as_secs_f64() * 1e3,
                    "total_ms": p.total().as_secs_f64() * 1e3,
                }));
            }
            println!("Tnum = {t}");
            table.print();
            dataset_json.push(json!({ "threads": t, "engines": point_json }));
        }
        records.push(json!({ "dataset": ds.name, "points": dataset_json }));
    }
    let record = json!({ "experiment": "exp4_vary_threads", "datasets": records });
    if let Ok(path) = ExperimentSink::new().write("exp4_vary_threads", &record) {
        println!("json: {}", path.display());
    }
    record
}
