//! Appendix experiment: project the measured work profile onto the
//! paper's hardware (480 GB/s GDDR5X vs ~56 GB/s DDR4) — the bandwidth
//! basis of the paper's GPU claims.
fn main() {
    wikisearch_bench::experiments::gpu_projection::run();
}
