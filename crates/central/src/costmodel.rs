//! Work counting and hardware cost projection.
//!
//! The paper's headline GPU numbers (two to three orders of magnitude over
//! BANKS-II, with GPU-Par ahead of CPU-Par on the memory-bound phases)
//! come from hardware we do not have: a GTX 1080 Ti with 480 GB/s GDDR5X
//! against a Xeon at ~56 GB/s (the paper quotes both figures). What we
//! *can* reproduce is the algorithm's exact work profile — every matrix
//! byte, adjacency entry and frontier flag the search touches — and then
//! project phase times on any memory system, because level-synchronous
//! BFS over CSR is bandwidth-bound (the premise of the paper's Sec. V-B
//! discussion and of the GPU-BFS literature it cites).
//!
//! [`count_work`] replays the bottom-up stage with instrumented sequential
//! expansion (property-tested to identify the same central nodes as the
//! real engines) and tallies traffic per phase; [`HardwareModel`] converts
//! the tallies into projected times.

use crate::activation::ActivationMap;
use crate::bottom_up::{enqueue_sequential, identify_sequential};
use crate::model::INFINITE_LEVEL;
use crate::state::SearchState;
use crate::SearchParams;
use kgraph::{KnowledgeGraph, NodeId};
use serde::{Deserialize, Serialize};
use textindex::ParsedQuery;

/// Byte/operation tallies of one bottom-up search.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkMeasure {
    /// Levels processed.
    pub levels: u32,
    /// Frontier entries drained over all levels.
    pub frontier_entries: u64,
    /// `FIdentifier` flags scanned during enqueue (|V| per level).
    pub flag_scans: u64,
    /// (frontier, instance) work items that passed the gates.
    pub work_items: u64,
    /// Adjacency entries scanned during expansion (8 bytes each).
    pub adjacency_scans: u64,
    /// Matrix reads during expansion + identification (1 byte each).
    pub matrix_reads: u64,
    /// Matrix writes (hits; 1 byte each).
    pub matrix_writes: u64,
    /// Central nodes identified.
    pub central_nodes: u64,
}

impl WorkMeasure {
    /// Bytes moved during the expansion phase (adjacency + matrix + flag
    /// traffic — the dominant term).
    pub fn expansion_bytes(&self) -> u64 {
        self.adjacency_scans * 8 + self.matrix_reads + self.matrix_writes * 2
    }

    /// Bytes moved during enqueue (flag scan + queue writes).
    pub fn enqueue_bytes(&self) -> u64 {
        self.flag_scans + self.frontier_entries * 4
    }

    /// Bytes moved during identification (one matrix row per frontier).
    pub fn identify_bytes(&self, q: usize) -> u64 {
        self.frontier_entries * q as u64
    }
}

/// A memory system to project onto.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct HardwareModel {
    /// Display name.
    pub name: &'static str,
    /// Effective memory bandwidth in GB/s for the streaming phases. The
    /// paper quotes 480 GB/s (GDDR5X) and ~56 GB/s (DDR4).
    pub bandwidth_gbps: f64,
    /// Achievable fraction of peak bandwidth for this access pattern
    /// (scattered BFS traffic reaches nowhere near peak; 0.15–0.35 is the
    /// range reported by the GPU-BFS literature the paper cites).
    pub efficiency: f64,
    /// Fixed per-level synchronization overhead in microseconds (kernel
    /// launch / barrier).
    pub per_level_overhead_us: f64,
}

impl HardwareModel {
    /// The paper's GPU (GTX 1080 Ti-class).
    pub fn paper_gpu() -> Self {
        HardwareModel {
            name: "GTX-1080Ti-class",
            bandwidth_gbps: 480.0,
            efficiency: 0.25,
            per_level_overhead_us: 20.0,
        }
    }

    /// The paper's CPU memory system (DDR4 Xeon).
    pub fn paper_cpu() -> Self {
        HardwareModel {
            name: "Xeon-DDR4-class",
            bandwidth_gbps: 56.0,
            efficiency: 0.35,
            per_level_overhead_us: 2.0,
        }
    }

    /// Projected time in milliseconds for the bottom-up phases of a
    /// measured search.
    pub fn project_ms(&self, work: &WorkMeasure, q: usize) -> f64 {
        let bytes = work.expansion_bytes() + work.enqueue_bytes() + work.identify_bytes(q);
        let effective = self.bandwidth_gbps * 1e9 * self.efficiency;
        let transfer_ms = bytes as f64 / effective * 1e3;
        let overhead_ms = work.levels as f64 * self.per_level_overhead_us / 1e3;
        transfer_ms + overhead_ms
    }
}

/// Replay the bottom-up stage sequentially, counting all traffic. The
/// identified central nodes must (and, by test, do) match the real
/// engines'.
pub fn count_work(
    graph: &KnowledgeGraph,
    query: &ParsedQuery,
    params: &SearchParams,
) -> WorkMeasure {
    let mut work = WorkMeasure::default();
    if query.is_empty() {
        return work;
    }
    let state = SearchState::new(graph.num_nodes(), query);
    let explicit = params.explicit_activation.clone();
    let act = match &explicit {
        Some(levels) => ActivationMap::Explicit(levels),
        None => ActivationMap::Computed {
            graph,
            config: crate::activation::ActivationConfig {
                alpha: params.alpha,
                average_distance: params.average_distance,
            },
        },
    };
    let q = state.num_keywords();
    let max_level = params.max_level.min(254);
    let mut frontiers: Vec<u32> = Vec::new();
    let mut newly: Vec<u32> = Vec::new();
    let mut central = 0usize;
    let mut level: u8 = 0;
    loop {
        enqueue_sequential(&state, &mut frontiers);
        work.flag_scans += state.num_nodes() as u64;
        work.frontier_entries += frontiers.len() as u64;
        if frontiers.is_empty() {
            break;
        }
        identify_sequential(&state, &frontiers, level, &mut newly);
        work.matrix_reads += frontiers.len() as u64 * q as u64;
        central += newly.len();
        work.central_nodes = central as u64;
        if central >= params.top_k || level >= max_level {
            break;
        }
        // Instrumented expansion (mirrors bottom_up::expand_frontier).
        for &f in &frontiers {
            if state.is_central(f) {
                continue;
            }
            let vf = NodeId(f);
            if act.level(vf) > level {
                state.mark_frontier(f);
                continue;
            }
            for i in 0..q {
                work.matrix_reads += 1;
                let hf = state.hit(f, i);
                if hf > level {
                    continue;
                }
                work.work_items += 1;
                for adj in graph.neighbors(vf) {
                    work.adjacency_scans += 1;
                    let n = adj.target().0;
                    work.matrix_reads += 1;
                    if state.hit(n, i) != INFINITE_LEVEL {
                        continue;
                    }
                    if !state.is_keyword_node(n) && act.level(adj.target()) > level + 1 {
                        state.mark_frontier(f);
                        continue;
                    }
                    state.set_hit(n, i, level + 1);
                    work.matrix_writes += 1;
                    state.mark_frontier(n);
                }
            }
        }
        level += 1;
        work.levels = level as u32;
    }
    work
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{KeywordSearchEngine, SeqEngine};
    use kgraph::GraphBuilder;
    use textindex::InvertedIndex;

    fn fixture() -> (KnowledgeGraph, ParsedQuery) {
        let mut b = GraphBuilder::new();
        let x = b.add_node("x", "alpha");
        let m = b.add_node("m", "middle");
        let y = b.add_node("y", "beta");
        let z = b.add_node("z", "gamma side");
        b.add_edge(x, m, "e");
        b.add_edge(y, m, "e");
        b.add_edge(z, m, "e");
        let g = b.build();
        let idx = InvertedIndex::build(&g);
        let q = ParsedQuery::parse(&idx, "alpha beta");
        (g, q)
    }

    #[test]
    fn counter_agrees_with_the_real_engine() {
        let (g, q) = fixture();
        let params = SearchParams::default().with_average_distance(1.0);
        let work = count_work(&g, &q, &params);
        let out = SeqEngine::new().search(&g, &q, &params);
        assert_eq!(work.central_nodes as usize, out.stats.central_candidates);
        assert!(work.work_items > 0);
        assert!(work.adjacency_scans >= work.work_items);
        assert!(work.matrix_writes >= 2, "m hit by both instances");
    }

    #[test]
    fn byte_accounting_is_consistent() {
        let (g, q) = fixture();
        let params = SearchParams::default().with_average_distance(1.0);
        let work = count_work(&g, &q, &params);
        assert_eq!(
            work.expansion_bytes(),
            work.adjacency_scans * 8 + work.matrix_reads + work.matrix_writes * 2
        );
        assert!(work.enqueue_bytes() > 0);
        assert!(work.identify_bytes(2) > 0);
    }

    #[test]
    fn higher_bandwidth_projects_faster() {
        let (g, q) = fixture();
        let params = SearchParams::default().with_average_distance(1.0);
        let work = count_work(&g, &q, &params);
        let gpu = HardwareModel::paper_gpu();
        let cpu = HardwareModel::paper_cpu();
        // On tiny inputs the GPU's per-level overhead dominates; compare
        // the pure transfer term by zeroing overheads.
        let gpu0 = HardwareModel { per_level_overhead_us: 0.0, ..gpu };
        let cpu0 = HardwareModel { per_level_overhead_us: 0.0, ..cpu };
        assert!(gpu0.project_ms(&work, 2) < cpu0.project_ms(&work, 2));
    }

    #[test]
    fn empty_query_counts_nothing() {
        let (g, _) = fixture();
        let idx = InvertedIndex::build(&g);
        let q = ParsedQuery::parse(&idx, "zzz");
        let work = count_work(&g, &q, &SearchParams::default());
        assert_eq!(work, WorkMeasure::default());
    }
}
