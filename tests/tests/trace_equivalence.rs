//! Tracing must be a pure observer: running any engine with
//! `TraceLevel::Full` returns byte-for-byte identical answers to the
//! untraced run, on arbitrary graphs and queries, for all four engines.
//!
//! This is the differential guarantee the whole observability layer
//! leans on — `EXPLAIN`, the slow-query log and `--explain` all re-run
//! queries traced, and may only do so because tracing provably never
//! changes what the user gets back. The suite also asserts the positive
//! side: every engine produces a structurally coherent per-level trace
//! (level numbers consecutive, frontier counts matching the engine's own
//! `SearchStats`, expansion totals consistent).

use central::engine::{DynParEngine, GpuStyleEngine, KeywordSearchEngine, ParCpuEngine, SeqEngine};
use central::{SearchParams, TraceLevel};
use kgraph::{GraphBuilder, KnowledgeGraph};
use proptest::prelude::*;
use textindex::{InvertedIndex, ParsedQuery};
use wikisearch_engine::{Backend, WikiSearch};

const WORDS: &[&str] = &["alpha", "beta", "gamma", "delta", "omega", "sigma", "kappa", "lambda"];

#[derive(Debug, Clone)]
struct Case {
    texts: Vec<Vec<usize>>,
    edges: Vec<(usize, usize)>,
    query: Vec<usize>,
    top_k: usize,
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (2usize..24).prop_flat_map(|nodes| {
        let texts =
            proptest::collection::vec(proptest::collection::vec(0usize..WORDS.len(), 1..3), nodes);
        let edges = proptest::collection::vec((0usize..nodes, 0usize..nodes), 1..50);
        let query = proptest::collection::vec(0usize..WORDS.len(), 2..4);
        let top_k = 1usize..8;
        (texts, edges, query, top_k).prop_map(|(texts, edges, query, top_k)| Case {
            texts,
            edges,
            query,
            top_k,
        })
    })
}

fn build_graph(case: &Case) -> KnowledgeGraph {
    let mut b = GraphBuilder::new();
    for (i, words) in case.texts.iter().enumerate() {
        let text: Vec<&str> = words.iter().map(|&w| WORDS[w]).collect();
        b.add_node(&format!("n{i}"), &text.join(" "));
    }
    for (idx, &(s, d)) in case.edges.iter().enumerate() {
        if s != d {
            let s = b.node(&format!("n{s}")).unwrap();
            let d = b.node(&format!("n{d}")).unwrap();
            b.add_edge(s, d, if idx % 3 == 0 { "p" } else { "q" });
        }
    }
    b.build()
}

fn engines() -> Vec<Box<dyn KeywordSearchEngine>> {
    vec![
        Box::new(SeqEngine::new()),
        Box::new(ParCpuEngine::new(3)),
        Box::new(GpuStyleEngine::new(3)),
        Box::new(DynParEngine::new(3)),
    ]
}

/// The byte-exact digest tracing must not disturb: every field of every
/// answer, in rank order.
fn answer_digest(answers: &[central::CentralGraph]) -> String {
    format!("{answers:?}")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn tracing_never_changes_any_engines_answers(case in case_strategy()) {
        let graph = build_graph(&case);
        let idx = InvertedIndex::build(&graph);
        let raw: Vec<&str> = case.query.iter().map(|&w| WORDS[w]).collect();
        let query = ParsedQuery::parse(&idx, &raw.join(" "));
        let base = SearchParams { top_k: case.top_k, max_level: 12, ..SearchParams::default() };
        let traced_params = base.clone().with_trace(TraceLevel::Full);

        for engine in engines() {
            let plain = engine.search(&graph, &query, &base);
            let traced = engine.search(&graph, &query, &traced_params);
            prop_assert_eq!(
                answer_digest(&plain.answers),
                answer_digest(&traced.answers),
                "tracing changed {}'s answers",
                engine.name()
            );
            prop_assert!(plain.trace.is_none(), "untraced run carries a trace");

            // The trace itself is structurally coherent.
            let trace = traced.trace.as_deref();
            prop_assert!(trace.is_some(), "{} returned no trace when asked", engine.name());
            let trace = trace.unwrap();
            prop_assert_eq!(trace.engine.as_str(), engine.name());
            prop_assert_eq!(trace.keywords, query.num_keywords());
            prop_assert_eq!(
                trace.levels.len(),
                traced.stats.trace.len(),
                "{}: rich trace and SearchStats disagree on level count",
                engine.name()
            );
            let mut expansions = 0u64;
            for (i, (rec, stat)) in trace.levels.iter().zip(&traced.stats.trace).enumerate() {
                prop_assert_eq!(rec.level as usize, i, "{}: levels not consecutive", engine.name());
                prop_assert_eq!(
                    rec.frontier,
                    stat.frontier,
                    "{}: frontier mismatch at level {}",
                    engine.name(),
                    i
                );
                prop_assert_eq!(
                    rec.identified,
                    stat.identified,
                    "{}: identified mismatch at level {}",
                    engine.name(),
                    i
                );
                prop_assert!(
                    rec.activation_deferred <= rec.frontier,
                    "{}: more deferred nodes than frontier nodes",
                    engine.name()
                );
                expansions += rec.expansions;
            }
            prop_assert_eq!(
                expansions,
                trace.total_expansions,
                "{}: per-level expansions do not sum to the total",
                engine.name()
            );
            prop_assert!(
                rec_budget_is_unset(trace),
                "{}: budget_remaining set on an uncapped query",
                engine.name()
            );
        }
    }
}

fn rec_budget_is_unset(trace: &central::QueryTrace) -> bool {
    trace.levels.iter().all(|r| r.budget_remaining.is_none())
}

#[test]
fn explain_produces_per_level_traces_on_every_backend() {
    let mut b = GraphBuilder::new();
    let x = b.add_node("x", "xml");
    let q = b.add_node("q", "query language");
    let s = b.add_node("s", "sql");
    let r = b.add_node("r", "rdf");
    b.add_edge(x, q, "rel");
    b.add_edge(s, q, "rel");
    b.add_edge(r, q, "rel");
    let graph = b.build();

    for (backend, name) in [
        (Backend::Sequential, "Seq"),
        (Backend::ParCpu(2), "CPU-Par"),
        (Backend::GpuStyle(2), "GPU-Par"),
        (Backend::DynPar(2), "CPU-Par-d"),
    ] {
        let ws = WikiSearch::build_with(graph.clone(), backend);
        let result = ws.explain("xml sql rdf", &central::QueryBudget::unlimited()).unwrap();
        let trace = result.trace.as_deref().unwrap_or_else(|| panic!("{name}: no trace"));
        assert_eq!(trace.engine, name);
        assert!(!trace.levels.is_empty(), "{name}: no per-level records");
        assert_eq!(trace.keywords, 3, "{name}");
        // The answer is found at level 1; level 0 is the three hit nodes.
        assert_eq!(trace.levels[0].frontier, 3, "{name}: {:?}", trace.levels);
        assert!(trace.levels.iter().map(|r| r.new_hits).sum::<usize>() >= 3, "{name}");
        assert!(result.answers.iter().any(|a| a.central == q), "{name}");
    }
}

#[test]
fn capped_queries_report_budget_headroom_in_the_trace() {
    let mut b = GraphBuilder::new();
    let x = b.add_node("x", "xml");
    let q = b.add_node("q", "query language");
    let s = b.add_node("s", "sql");
    b.add_edge(x, q, "rel");
    b.add_edge(s, q, "rel");
    let ws = WikiSearch::build_with(b.build(), Backend::Sequential);
    let budget = central::QueryBudget::unlimited().with_max_expansions(1_000_000);
    let result = ws.explain("xml sql", &budget).unwrap();
    let trace = result.trace.as_deref().expect("trace");
    assert!(!trace.levels.is_empty());
    for rec in &trace.levels {
        let remaining = rec.budget_remaining.expect("capped query reports headroom");
        assert!(remaining <= 1_000_000);
    }
}
