//! Regenerates the paper's Fig. 3.
fn main() {
    wikisearch_bench::experiments::fig3_activation::run();
}
