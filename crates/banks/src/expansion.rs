//! Shared expansion machinery for BANKS-I and BANKS-II: multi-origin
//! best-first search per keyword group, candidate-root detection, the
//! conservative top-k emission test, and answer-tree reconstruction.

use crate::answer::{BanksOutcome, BanksParams, TreeAnswer};
use kgraph::{KnowledgeGraph, NodeId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::time::Instant;
use textindex::ParsedQuery;

/// How the global priority queue orders expansion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExpansionOrder {
    /// Dijkstra order (BANKS-I's backward search): nearest node first.
    Distance,
    /// Spreading-activation order (BANKS-II): highest activation first,
    /// decaying by `μ` per hop. Can settle nodes at non-minimal distance,
    /// paying for later corrections.
    Activation,
}

/// Edge cost of stepping *into* `v` — `1 + log2(1 + deg(v))`, the
/// in-degree-based weighting of the BANKS papers. Stepping into a summary
/// hub is expensive.
#[inline]
pub fn edge_cost(graph: &KnowledgeGraph, v: NodeId) -> f32 {
    1.0 + (1.0 + graph.degree(v) as f32).log2()
}

/// Total-order wrapper so `f32` priorities can live in a `BinaryHeap`.
#[derive(Clone, Copy, PartialEq)]
struct OrdF32(f32);
impl Eq for OrdF32 {}
impl PartialOrd for OrdF32 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF32 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A pending expansion: priority (max-heap), node, keyword group, the
/// distance along the discovering path, and the path's activation.
#[derive(Clone, Copy)]
struct Entry {
    priority: OrdF32,
    node: u32,
    group: u16,
    dist: f32,
    activation: f32,
}
impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority.cmp(&other.priority)
    }
}

const NO_PARENT: u32 = u32::MAX;

/// Per-group single-source-set shortest-path state.
struct GroupState {
    dist: Vec<f32>,
    parent: Vec<u32>,
}

impl GroupState {
    fn new(n: usize) -> Self {
        GroupState { dist: vec![f32::INFINITY; n], parent: vec![NO_PARENT; n] }
    }
}

/// Run a BANKS-style search and return the top-k tree answers.
pub fn run(
    graph: &KnowledgeGraph,
    query: &ParsedQuery,
    params: &BanksParams,
    order: ExpansionOrder,
) -> BanksOutcome {
    let start = Instant::now();
    let n = graph.num_nodes();
    let q = query.num_keywords();
    if q == 0 || n == 0 {
        return BanksOutcome::default();
    }

    let mut groups: Vec<GroupState> = (0..q).map(|_| GroupState::new(n)).collect();
    let mut pq: BinaryHeap<Entry> = BinaryHeap::new();
    // Per-group min-distance heaps over pending entries: lazily cleaned
    // lower bounds for the conservative emission test.
    let mut pending: Vec<BinaryHeap<Reverse<(OrdF32, u32)>>> =
        (0..q).map(|_| BinaryHeap::new()).collect();
    // reached[v] counts groups with finite distance; candidate roots have
    // reached[v] == q.
    let mut reached: Vec<u16> = vec![0; n];
    let mut candidates: HashMap<u32, f64> = HashMap::new();

    for (i, group) in query.groups.iter().enumerate() {
        let activation = 1.0 / group.nodes.len() as f32;
        for &s in &group.nodes {
            groups[i].dist[s.index()] = 0.0;
            reached[s.index()] += 1;
            if reached[s.index()] as usize == q {
                candidates.insert(s.0, 0.0);
            }
            let priority = match order {
                ExpansionOrder::Distance => OrdF32(0.0),
                ExpansionOrder::Activation => OrdF32(activation),
            };
            pq.push(Entry { priority, node: s.0, group: i as u16, dist: 0.0, activation });
            pending[i].push(Reverse((OrdF32(0.0), s.0)));
        }
    }

    let mut pops = 0usize;
    let mut budget_exhausted = false;
    while let Some(e) = pq.pop() {
        pops += 1;
        if pops > params.node_budget {
            budget_exhausted = true;
            break;
        }
        let i = e.group as usize;
        // Stale entry: a shorter path to this node was already settled.
        if e.dist > groups[i].dist[e.node as usize] {
            continue;
        }
        // Relax all neighbors (bi-directed view, as in the evaluated KB).
        for adj in graph.neighbors(NodeId(e.node)) {
            let t = adj.target();
            let nd = e.dist + edge_cost(graph, t);
            let gs = &mut groups[i];
            if nd + 1e-6 < gs.dist[t.index()] {
                let newly_reached = gs.dist[t.index()].is_infinite();
                gs.dist[t.index()] = nd;
                gs.parent[t.index()] = e.node;
                if newly_reached {
                    reached[t.index()] += 1;
                }
                let activation = e.activation * params.decay;
                let priority = match order {
                    ExpansionOrder::Distance => OrdF32(-nd),
                    ExpansionOrder::Activation => OrdF32(activation),
                };
                pq.push(Entry { priority, node: t.0, group: e.group, dist: nd, activation });
                pending[i].push(Reverse((OrdF32(nd), t.0)));
                if reached[t.index()] as usize == q {
                    let score: f64 = (0..q).map(|g| groups[g].dist[t.index()] as f64).sum();
                    candidates.entry(t.0).and_modify(|s| *s = s.min(score)).or_insert(score);
                }
            }
        }
        // Conservative emission test, checked periodically: stop once the
        // k-th best candidate cannot be beaten by any undiscovered tree.
        if pops.is_multiple_of(256) && candidates.len() >= params.top_k {
            let lb = lower_bound(&mut pending, &groups);
            let mut scores: Vec<f64> = candidates.values().copied().collect();
            scores.sort_by(f64::total_cmp);
            if scores[params.top_k - 1] <= lb {
                break;
            }
        }
    }

    // Refresh candidate scores (later relaxations may have improved paths)
    // and emit the top-k trees.
    let mut final_scores: Vec<(u32, f64)> = candidates
        .keys()
        .map(|&v| {
            let score: f64 = (0..q).map(|g| groups[g].dist[v as usize] as f64).sum();
            (v, score)
        })
        .collect();
    final_scores.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    final_scores.truncate(params.top_k);

    let answers: Vec<TreeAnswer> = final_scores
        .into_iter()
        .map(|(root, score)| {
            let paths: Vec<Vec<NodeId>> =
                (0..q).map(|g| reconstruct_path(&groups[g], root)).collect();
            TreeAnswer::from_paths(NodeId(root), paths, score)
        })
        .collect();

    BanksOutcome { answers, pops, elapsed: start.elapsed(), budget_exhausted }
}

/// Lower bound on the score of any tree not yet fully discovered: the sum
/// over groups of the smallest pending (non-stale) distance.
fn lower_bound(pending: &mut [BinaryHeap<Reverse<(OrdF32, u32)>>], groups: &[GroupState]) -> f64 {
    let mut total = 0.0f64;
    for (i, heap) in pending.iter_mut().enumerate() {
        // Drop stale tops (their node already settled at a smaller dist).
        while let Some(Reverse((d, v))) = heap.peek().copied() {
            if d.0 > groups[i].dist[v as usize] + 1e-6 {
                heap.pop();
            } else {
                break;
            }
        }
        // A drained group is fully settled and contributes 0.
        if let Some(Reverse((d, _))) = heap.peek() {
            total += d.0 as f64;
        }
    }
    total
}

/// Follow parent pointers from `root` down to a group source.
fn reconstruct_path(gs: &GroupState, root: u32) -> Vec<NodeId> {
    let mut path = vec![NodeId(root)];
    let mut cur = root;
    let mut guard = 0;
    while gs.parent[cur as usize] != NO_PARENT && gs.dist[cur as usize] > 0.0 {
        cur = gs.parent[cur as usize];
        path.push(NodeId(cur));
        guard += 1;
        if guard > 10_000 {
            break; // parent cycle guard (cannot happen with positive costs)
        }
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::GraphBuilder;
    use textindex::InvertedIndex;

    fn line_graph() -> (KnowledgeGraph, ParsedQuery) {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a", "alpha");
        let m = b.add_node("m", "mid");
        let z = b.add_node("z", "omega");
        b.add_edge(a, m, "e");
        b.add_edge(m, z, "e");
        let g = b.build();
        let idx = InvertedIndex::build(&g);
        let q = ParsedQuery::parse(&idx, "alpha omega");
        (g, q)
    }

    #[test]
    fn distance_order_finds_the_connecting_tree() {
        let (g, q) = line_graph();
        let out = run(&g, &q, &BanksParams::default(), ExpansionOrder::Distance);
        assert!(!out.answers.is_empty());
        let best = &out.answers[0];
        best.check_invariants().unwrap();
        // All three nodes participate; the root is one of them.
        assert_eq!(best.nodes.len(), 3);
    }

    #[test]
    fn activation_order_finds_the_same_answer_here() {
        let (g, q) = line_graph();
        let d = run(&g, &q, &BanksParams::default(), ExpansionOrder::Distance);
        let a = run(&g, &q, &BanksParams::default(), ExpansionOrder::Activation);
        assert_eq!(d.answers[0].nodes, a.answers[0].nodes);
        assert!((d.answers[0].score - a.answers[0].score).abs() < 1e-6);
    }

    #[test]
    fn edge_cost_penalizes_hubs() {
        let mut b = GraphBuilder::new();
        let hub = b.add_node("hub", "hub");
        let leaf = b.add_node("l0", "leaf");
        b.add_edge(leaf, hub, "e");
        for i in 1..100 {
            let l = b.add_node(&format!("l{i}"), "leaf");
            b.add_edge(l, hub, "e");
        }
        let g = b.build();
        assert!(edge_cost(&g, hub) > edge_cost(&g, leaf));
    }

    #[test]
    fn budget_cuts_search_short() {
        let (g, q) = line_graph();
        let out =
            run(&g, &q, &BanksParams::default().with_node_budget(1), ExpansionOrder::Distance);
        assert!(out.budget_exhausted);
    }

    #[test]
    fn disconnected_keywords_produce_no_answers() {
        let mut b = GraphBuilder::new();
        b.add_node("a", "alpha");
        b.add_node("z", "omega");
        let g = b.build();
        let idx = InvertedIndex::build(&g);
        let q = ParsedQuery::parse(&idx, "alpha omega");
        let out = run(&g, &q, &BanksParams::default(), ExpansionOrder::Distance);
        assert!(out.answers.is_empty());
        assert!(!out.budget_exhausted);
    }

    #[test]
    fn co_occurring_keywords_root_at_the_common_node() {
        let mut b = GraphBuilder::new();
        let both = b.add_node("b", "alpha omega");
        let x = b.add_node("x", "filler");
        b.add_edge(both, x, "e");
        let g = b.build();
        let idx = InvertedIndex::build(&g);
        let q = ParsedQuery::parse(&idx, "alpha omega");
        let out = run(&g, &q, &BanksParams::default(), ExpansionOrder::Distance);
        assert_eq!(out.answers[0].root, both);
        assert_eq!(out.answers[0].score, 0.0);
    }
}
