//! Test-only fault injection (feature `fault-inject`).
//!
//! The fault-isolation guarantees of the serving layer — panic
//! quarantine, deadline enforcement, budget shedding — are only worth
//! having if they are *proven* against real faults. This module lets the
//! integration suite create those faults deterministically from the
//! outside, through the ordinary query protocol, with no special test
//! API on the server: a query containing one of the magic tokens below
//! misbehaves inside the engine exactly where a real pathological query
//! would.
//!
//! | token | behaviour |
//! |---|---|
//! | `fault0panic` | panics inside the search (after session checkout) |
//! | `fault0sleep` / `fault0sleepNNN` | stalls `NNN` ms (default/cap 30 s), honouring the deadline cooperatively |
//! | `fault0alloc` | allocates 1 MiB slabs, charging the expansion budget per byte |
//! | `fault0drop` | a remote shard worker drops the connection at query start |
//! | `fault0stall` / `fault0stallNNN` | a remote shard worker stalls `NNN` ms (default/cap 30 s) before replying |
//! | `fault0garbage` | a remote shard worker answers with a garbage frame |
//!
//! The last three are *network-shaped*: they are interpreted by the
//! remote shard worker ([`crate::remote`]) rather than by the in-process
//! engines, so the chaos suite can drive real wire-level failures
//! (connection drop, RPC stall, protocol corruption) through the ordinary
//! query path. The issue-facing spellings `fault0stall-conn` and
//! `fault0garbage-frame` work too: the tokenizer splits on the hyphen and
//! the worker matches on the surviving prefix token (the residue —
//! `conn`, `frame` — is an ordinary unmatched term).
//!
//! Tokens are chosen to survive the text pipeline unmangled: they contain
//! a digit, so the tokenizer keeps them (not purely numeric) and the
//! Porter stemmer leaves them untouched (not all-lowercase-alpha), and
//! they match no real node label, so a fault query parses to an empty
//! keyword set and would otherwise be a cheap no-answer query.
//!
//! The hook runs at the top of every engine's search, after parameter
//! validation and budget arming but before the empty-query short-circuit.
//! It is compiled only under the `fault-inject` feature; release builds
//! carry no trace of it.

use crate::budget::BudgetTracker;
use crate::error::SearchError;
use std::time::{Duration, Instant};
use textindex::ParsedQuery;

/// Token that panics the search.
pub const PANIC_TOKEN: &str = "fault0panic";
/// Token prefix that stalls the search (optional trailing milliseconds).
pub const SLEEP_TOKEN: &str = "fault0sleep";
/// Token that allocates until the expansion budget trips.
pub const ALLOC_TOKEN: &str = "fault0alloc";
/// Token that makes a remote shard worker drop the connection.
pub const DROP_TOKEN: &str = "fault0drop";
/// Token prefix that makes a remote shard worker stall before replying
/// (optional trailing milliseconds).
pub const STALL_TOKEN: &str = "fault0stall";
/// Token that makes a remote shard worker emit a garbage frame.
pub const GARBAGE_TOKEN: &str = "fault0garbage";

/// A wire-level fault a remote shard worker should inject for a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetworkFault {
    /// Close the connection without replying (simulated crash).
    Drop,
    /// Sleep this long before replying (simulated stall / slow worker).
    Stall(Duration),
    /// Write a garbage frame instead of the real reply.
    Garbage,
}

/// Inspect `query` for the network-shaped fault tokens. Called by the
/// remote shard worker when it receives a query-start frame; the
/// in-process engines ignore these tokens (they parse as ordinary
/// unmatched terms).
pub fn network_fault(query: &ParsedQuery) -> Option<NetworkFault> {
    let tokens = query
        .groups
        .iter()
        .map(|g| g.term.as_str())
        .chain(query.unmatched.iter().map(String::as_str));
    for token in tokens {
        if token == DROP_TOKEN {
            return Some(NetworkFault::Drop);
        }
        if token == GARBAGE_TOKEN {
            return Some(NetworkFault::Garbage);
        }
        if let Some(ms) = token.strip_prefix(STALL_TOKEN) {
            let total = match ms.parse::<u64>() {
                Ok(ms) => Duration::from_millis(ms).min(MAX_SLEEP),
                Err(_) => MAX_SLEEP,
            };
            return Some(NetworkFault::Stall(total));
        }
    }
    None
}

/// Hard cap on an injected stall, so an uncapped sleep token cannot hang
/// a suite forever.
const MAX_SLEEP: Duration = Duration::from_secs(30);
/// Granularity of the cooperative stall's deadline polling.
const SLEEP_TICK: Duration = Duration::from_millis(2);

/// Inspect `query` for fault tokens and misbehave accordingly. Called by
/// every engine right after its budget tracker is armed.
///
/// # Panics
/// Panics when the query carries [`PANIC_TOKEN`] — that is the point.
pub fn inject(query: &ParsedQuery, tracker: &BudgetTracker) -> Result<(), SearchError> {
    let tokens = query
        .groups
        .iter()
        .map(|g| g.term.as_str())
        .chain(query.unmatched.iter().map(String::as_str));
    for token in tokens {
        if token == PANIC_TOKEN {
            panic!("fault-inject: query requested a panic");
        }
        if let Some(ms) = token.strip_prefix(SLEEP_TOKEN) {
            let total = match ms.parse::<u64>() {
                Ok(ms) => Duration::from_millis(ms).min(MAX_SLEEP),
                Err(_) => MAX_SLEEP,
            };
            let start = Instant::now();
            while start.elapsed() < total {
                std::thread::sleep(SLEEP_TICK);
                tracker.poll_deadline();
                if let Some(e) = tracker.error() {
                    return Err(e);
                }
            }
        }
        if token == ALLOC_TOKEN {
            // 1 MiB slabs, each charged against the expansion budget; the
            // slab count is bounded so an uncapped run cannot OOM a test
            // host.
            let mut slabs: Vec<Vec<u8>> = Vec::new();
            for _ in 0..64 {
                slabs.push(vec![0xAB; 1 << 20]);
                tracker.charge(1 << 20);
                if let Some(e) = tracker.error() {
                    return Err(e);
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QueryBudget;
    use kgraph::GraphBuilder;
    use textindex::InvertedIndex;

    fn parse(raw: &str) -> ParsedQuery {
        let mut b = GraphBuilder::new();
        b.add_node("x", "alpha");
        let g = b.build();
        let idx = InvertedIndex::build(&g);
        ParsedQuery::parse(&idx, raw)
    }

    #[test]
    fn fault_tokens_survive_the_text_pipeline() {
        for raw in [PANIC_TOKEN, "fault0sleep250", ALLOC_TOKEN, DROP_TOKEN, GARBAGE_TOKEN] {
            let q = parse(raw);
            assert_eq!(q.unmatched, vec![raw.to_string()], "{raw} mangled by analyzer");
        }
    }

    #[test]
    fn network_tokens_map_to_wire_faults() {
        assert_eq!(network_fault(&parse(DROP_TOKEN)), Some(NetworkFault::Drop));
        assert_eq!(network_fault(&parse(GARBAGE_TOKEN)), Some(NetworkFault::Garbage));
        assert_eq!(
            network_fault(&parse("fault0stall250")),
            Some(NetworkFault::Stall(Duration::from_millis(250)))
        );
        assert_eq!(network_fault(&parse(STALL_TOKEN)), Some(NetworkFault::Stall(MAX_SLEEP)));
        assert_eq!(network_fault(&parse("alpha beta")), None);
        // In-process tokens are not network faults and vice versa.
        assert_eq!(network_fault(&parse(PANIC_TOKEN)), None);
    }

    #[test]
    fn hyphenated_issue_spellings_survive_as_prefix_tokens() {
        // The tokenizer splits on hyphens; the fault prefix survives as
        // its own token and the residue is ordinary unmatched noise.
        let q = parse("fault0stall-conn");
        assert!(q.unmatched.contains(&"fault0stall".to_string()), "{:?}", q.unmatched);
        assert_eq!(network_fault(&q), Some(NetworkFault::Stall(MAX_SLEEP)));
        let q = parse("fault0garbage-frame");
        assert_eq!(network_fault(&q), Some(NetworkFault::Garbage));
    }

    #[test]
    #[should_panic(expected = "fault-inject")]
    fn panic_token_panics() {
        let tracker = QueryBudget::unlimited().start();
        let _ = inject(&parse(PANIC_TOKEN), &tracker);
    }

    #[test]
    fn sleep_token_honours_the_deadline() {
        let tracker = QueryBudget::unlimited().with_timeout(Duration::from_millis(20)).start();
        let start = Instant::now();
        let err = inject(&parse("fault0sleep10000"), &tracker).unwrap_err();
        assert_eq!(err.kind(), "deadline_exceeded");
        assert!(start.elapsed() < Duration::from_secs(5), "stall must stop at the deadline");
    }

    #[test]
    fn bounded_sleep_completes_without_a_deadline() {
        let tracker = QueryBudget::unlimited().start();
        assert_eq!(inject(&parse("fault0sleep10"), &tracker), Ok(()));
    }

    #[test]
    fn alloc_token_trips_the_expansion_cap() {
        let tracker = QueryBudget::unlimited().with_max_expansions(1 << 21).start();
        let err = inject(&parse(ALLOC_TOKEN), &tracker).unwrap_err();
        assert_eq!(err.kind(), "budget_exhausted");
    }

    #[test]
    fn plain_queries_are_untouched() {
        let tracker = QueryBudget::unlimited().start();
        assert_eq!(inject(&parse("alpha beta"), &tracker), Ok(()));
    }
}
