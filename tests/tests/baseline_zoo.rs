//! All five search models on one fixture: the Central Graph engine and
//! the four baselines the paper discusses (BANKS-I, BANKS-II, BLINKS,
//! r-clique, EASE) must each find the obvious connecting answer — and
//! their different answer shapes are what the paper's Sec. II contrasts.

use banks::{BanksI, BanksII, BanksParams};
use blinks::{BlinksSearch, NodeKeywordIndex};
use central::engine::{KeywordSearchEngine, SeqEngine};
use central::SearchParams;
use ease::{EaseSearch, RadiusIndex};
use kgraph::{GraphBuilder, KnowledgeGraph, NodeId};
use rclique::{NeighborIndex, RCliqueParams, RCliqueSearch};
use textindex::{InvertedIndex, ParsedQuery};

/// apple — hub — banana, plus periphery.
fn fixture() -> (KnowledgeGraph, InvertedIndex, NodeId) {
    let mut b = GraphBuilder::new();
    let a = b.add_node("a", "apple fruit");
    let hub = b.add_node("h", "market");
    let z = b.add_node("z", "banana fruit");
    b.add_edge(a, hub, "sold at");
    b.add_edge(z, hub, "sold at");
    for i in 0..6 {
        let p = b.add_node(&format!("p{i}"), "shopper");
        b.add_edge(p, hub, "visits");
    }
    let g = b.build();
    let idx = InvertedIndex::build(&g);
    (g, idx, hub)
}

#[test]
fn every_model_connects_the_keywords_through_the_hub() {
    let (g, idx, hub) = fixture();
    let query = ParsedQuery::parse(&idx, "apple banana");

    // Central Graph: graph-shaped answer centered at the hub.
    let cg =
        SeqEngine::new().search(&g, &query, &SearchParams::default().with_average_distance(1.5));
    assert!(cg.answers.iter().any(|a| a.central == hub));

    // BANKS-I / BANKS-II: tree answers spanning both keywords + hub.
    for out in [
        BanksI::new().search(&g, &query, &BanksParams::default()),
        BanksII::new().search(&g, &query, &BanksParams::default()),
    ] {
        let best = &out.answers[0];
        assert!(best.contains_node(hub), "tree must route through the hub");
    }

    // BLINKS: distinct-root answers from the precomputed index.
    let nk = NodeKeywordIndex::build(&g, &idx, 8);
    let blinks = BlinksSearch::new(&g, &nk).search(&query, 3);
    assert!(!blinks.is_empty());
    assert!(blinks.iter().any(|a| a.nodes().contains(&hub)));

    // r-clique: the two keyword nodes form a 2-clique at distance 2.
    let ni = NeighborIndex::build(&g, 3);
    let rc = RCliqueSearch::new(&g, &ni).search(&query, &RCliqueParams { r: 2, top_k: 3 });
    assert!(!rc.is_empty());
    assert_eq!(rc[0].weight, 2);
    assert!(rc[0].tree_nodes.contains(&hub));

    // EASE: the hub's radius-1 ball holds both content nodes.
    let ri = RadiusIndex::build(&g, 1, false);
    let ea = EaseSearch::new(&g, &ri).search(&query, 3);
    assert!(!ea.is_empty());
    assert_eq!(ea[0].center, hub);
}

#[test]
fn answer_shapes_differ_as_the_paper_describes() {
    // Fig. 1's argument: graph answers admit several keyword nodes per
    // keyword; tree models must emit several trees for the same content.
    let mut b = GraphBuilder::new();
    let hub = b.add_node("h", "survey");
    let a = b.add_node("a", "apple");
    let z1 = b.add_node("z1", "banana yellow");
    let z2 = b.add_node("z2", "banana green");
    b.add_edge(a, hub, "e");
    b.add_edge(z1, hub, "e");
    b.add_edge(z2, hub, "e");
    let g = b.build();
    let idx = InvertedIndex::build(&g);
    let query = ParsedQuery::parse(&idx, "apple banana");

    let cg =
        SeqEngine::new().search(&g, &query, &SearchParams::default().with_average_distance(1.0));
    let hub_answer = cg.answers.iter().find(|ans| ans.central == hub).unwrap();
    // One graph answer carries both banana nodes …
    assert_eq!(hub_answer.keyword_nodes[1].len(), 2);

    // … while each BANKS tree carries exactly one path per keyword.
    let banks = BanksII::new().search(&g, &query, &BanksParams::default());
    for tree in &banks.answers {
        assert_eq!(tree.paths.len(), 2);
        let bananas = tree
            .paths
            .iter()
            .filter(|p| {
                let leaf = *p.last().unwrap();
                leaf == g.find_node_by_key("z1").unwrap()
                    || leaf == g.find_node_by_key("z2").unwrap()
            })
            .count();
        assert!(bananas <= 1, "a tree answer holds one banana leaf");
    }
}
