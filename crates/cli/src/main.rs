//! `wikisearch` binary entry point — see [`wikisearch_cli`] for the
//! command set.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout();
    std::process::exit(wikisearch_cli::run(&argv, &mut stdout));
}
