//! Word tokenizer for node labels and queries.
//!
//! Splits on any non-alphanumeric character, lowercases, and drops empty
//! and purely-numeric tokens (Wikidata labels are full of years and ids
//! that make poor keywords). Unicode letters are kept — Wikidata labels are
//! multilingual even after English filtering (proper names, diacritics).

/// Tokenize `text` into lowercase word tokens.
///
/// ```
/// use textindex::tokenize;
/// assert_eq!(tokenize("SPARQL 1.1 query-language!"), vec!["sparql", "query", "language"]);
/// ```
pub fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .filter(|t| !t.chars().all(|c| c.is_ascii_digit()))
        .map(|t| t.to_lowercase())
        .collect()
}

/// Tokenize and deduplicate, preserving first-occurrence order. Used for
/// node labels where repeated words should index once.
pub fn tokenize_unique(text: &str) -> Vec<String> {
    let mut seen = std::collections::HashSet::new();
    tokenize(text).into_iter().filter(|t| seen.insert(t.clone())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_punctuation_and_whitespace() {
        assert_eq!(tokenize("Facebook Query Language"), vec!["facebook", "query", "language"]);
        assert_eq!(tokenize("XPath-2/XPath 3"), vec!["xpath", "xpath"]);
    }

    #[test]
    fn lowercases() {
        assert_eq!(tokenize("RDF SQL XML"), vec!["rdf", "sql", "xml"]);
    }

    #[test]
    fn drops_pure_numbers_keeps_alphanumerics() {
        assert_eq!(tokenize("SPARQL 1.1"), vec!["sparql"]);
        assert_eq!(tokenize("sha256 2048"), vec!["sha256"]);
    }

    #[test]
    fn empty_and_symbol_only_inputs() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("--- !!! 123").is_empty());
    }

    #[test]
    fn unicode_letters_survive() {
        assert_eq!(tokenize("Gödel's theorem"), vec!["gödel", "s", "theorem"]);
    }

    #[test]
    fn unique_preserves_first_occurrence_order() {
        assert_eq!(
            tokenize_unique("data mining and data analysis"),
            vec!["data", "mining", "and", "analysis"]
        );
    }
}
