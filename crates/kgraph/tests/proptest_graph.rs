//! Property tests of the graph substrate: CSR construction invariants and
//! serialization round-trips over arbitrary graphs.

use kgraph::{binio, io, GraphBuilder, KnowledgeGraph};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RawGraph {
    texts: Vec<String>,
    edges: Vec<(usize, usize, u8)>,
}

fn raw_graph() -> impl Strategy<Value = RawGraph> {
    (1usize..30).prop_flat_map(|nodes| {
        let texts = proptest::collection::vec("[a-z]{1,8}( [a-z]{1,8}){0,2}", nodes);
        let edges = proptest::collection::vec((0usize..nodes, 0usize..nodes, 0u8..5), 0..80);
        (texts, edges).prop_map(|(texts, edges)| RawGraph { texts, edges })
    })
}

fn build(raw: &RawGraph) -> KnowledgeGraph {
    let mut b = GraphBuilder::new();
    for (i, t) in raw.texts.iter().enumerate() {
        b.add_node(&format!("n{i}"), t);
    }
    for &(s, d, l) in &raw.edges {
        let s = b.node(&format!("n{s}")).unwrap();
        let d = b.node(&format!("n{d}")).unwrap();
        b.add_edge(s, d, &format!("label{l}"));
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn csr_invariants_hold(raw in raw_graph()) {
        let g = build(&raw);
        prop_assert!(g.check_invariants().is_ok(), "{:?}", g.check_invariants());
        // Bi-directed symmetry: every adjacency entry has a mirror at the
        // other endpoint with the same label and flipped direction.
        for v in g.nodes() {
            for a in g.neighbors(v) {
                let mirrored = g
                    .neighbors(a.target())
                    .iter()
                    .any(|m| m.target() == v && m.label() == a.label()
                        && m.is_outgoing() != a.is_outgoing());
                prop_assert!(mirrored, "missing mirror for {v} -> {}", a.target());
            }
        }
        // Degree sums are consistent with edge counts.
        let in_sum: usize = g.nodes().map(|v| g.in_degree(v)).sum();
        let out_sum: usize = g.nodes().map(|v| g.out_degree(v)).sum();
        prop_assert_eq!(in_sum, g.num_directed_edges());
        prop_assert_eq!(out_sum, g.num_directed_edges());
    }

    #[test]
    fn build_is_idempotent_over_duplicate_insertion(raw in raw_graph()) {
        let g1 = build(&raw);
        // Re-adding every triple twice must not change the graph.
        let mut doubled = raw.clone();
        doubled.edges.extend(raw.edges.iter().copied());
        let g2 = build(&doubled);
        prop_assert_eq!(g1.num_directed_edges(), g2.num_directed_edges());
        prop_assert_eq!(g1.num_adjacency_entries(), g2.num_adjacency_entries());
    }

    #[test]
    fn tsv_round_trip(raw in raw_graph()) {
        let g = build(&raw);
        let restored = io::from_tsv(&io::to_tsv(&g)).unwrap();
        prop_assert_eq!(restored.num_nodes(), g.num_nodes());
        prop_assert_eq!(restored.num_directed_edges(), g.num_directed_edges());
        for v in g.nodes() {
            prop_assert_eq!(restored.node_text(v), g.node_text(v));
            prop_assert_eq!(restored.degree(v), g.degree(v));
        }
    }

    #[test]
    fn binary_round_trip(raw in raw_graph()) {
        let g = build(&raw);
        let restored = binio::from_bytes(&binio::to_bytes(&g)).unwrap();
        prop_assert_eq!(restored.num_nodes(), g.num_nodes());
        prop_assert_eq!(restored.num_directed_edges(), g.num_directed_edges());
        for v in g.nodes() {
            prop_assert_eq!(restored.node_key(v), g.node_key(v));
            prop_assert_eq!(restored.node_text(v), g.node_text(v));
            prop_assert!((restored.weight(v) - g.weight(v)).abs() < 1e-6);
        }
        prop_assert!(restored.check_invariants().is_ok());
    }

    #[test]
    fn weights_are_normalized_and_hub_heavy(raw in raw_graph()) {
        let g = build(&raw);
        for v in g.nodes() {
            let w = g.weight(v);
            prop_assert!((0.0..=1.0).contains(&w));
            if g.in_degree(v) == 0 {
                prop_assert_eq!(g.raw_weight(v), 0.0);
            }
        }
    }

    #[test]
    fn bfs_distance_is_symmetric_on_bidirected_graphs(raw in raw_graph()) {
        let g = build(&raw);
        if g.num_nodes() >= 2 {
            let a = kgraph::NodeId(0);
            let b = kgraph::NodeId((g.num_nodes() - 1) as u32);
            let d1 = kgraph::sampling::bfs_distance(&g, a, b, 64);
            let d2 = kgraph::sampling::bfs_distance(&g, b, a, 64);
            prop_assert_eq!(d1, d2);
        }
    }
}
