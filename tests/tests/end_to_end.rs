//! End-to-end scenarios spanning every crate: synthetic datasets, the
//! text pipeline, all engines, BANKS baselines, serialization and the
//! effectiveness machinery.

use banks::{BanksI, BanksII, BanksParams};
use central::SearchParams;
use datagen::synthetic::SyntheticConfig;
use datagen::{PlantedDataset, QueryWorkload};
use eval::precision::EffectivenessReport;
use kgraph::MemoryFootprint;
use textindex::{InvertedIndex, ParsedQuery};
use wikisearch_engine::{Backend, WikiSearch};

#[test]
fn synthetic_dataset_end_to_end_search() {
    let ds = SyntheticConfig::tiny(11).generate();
    let ws = WikiSearch::build_with(ds.graph, Backend::ParCpu(2));
    let mut workload = QueryWorkload::new(5);
    let mut answered = 0;
    for _ in 0..5 {
        let q = workload.query(4);
        let result = ws.search(&q);
        for a in &result.answers {
            a.check_invariants().unwrap();
        }
        if !result.answers.is_empty() {
            answered += 1;
        }
    }
    assert!(answered >= 3, "most workload queries should be answerable, got {answered}/5");
}

#[test]
fn engine_backends_agree_on_synthetic_data() {
    let ds = SyntheticConfig::tiny(13).generate();
    let graph = ds.graph;
    let index = InvertedIndex::build(&graph);
    let query = ParsedQuery::parse(&index, "machine learning inference");
    let params = SearchParams::default().with_average_distance(2.5).with_top_k(8);

    use central::engine::*;
    let seq = SeqEngine::new().search(&graph, &query, &params);
    let cpu = ParCpuEngine::new(3).search(&graph, &query, &params);
    let gpu = GpuStyleEngine::new(3).search(&graph, &query, &params);
    let dyn_ = DynParEngine::new(3).search(&graph, &query, &params);
    for out in [&cpu, &gpu, &dyn_] {
        assert_eq!(out.answers.len(), seq.answers.len());
        for (a, b) in out.answers.iter().zip(&seq.answers) {
            assert_eq!(a.central, b.central);
            assert_eq!(a.nodes, b.nodes);
            assert_eq!(a.edges, b.edges);
        }
    }
}

#[test]
fn graph_survives_tsv_round_trip_with_identical_search_results() {
    let ds = SyntheticConfig::tiny(17).generate();
    let text = kgraph::io::to_tsv(&ds.graph);
    let restored = kgraph::io::from_tsv(&text).unwrap();
    assert_eq!(restored.num_nodes(), ds.graph.num_nodes());
    assert_eq!(restored.num_directed_edges(), ds.graph.num_directed_edges());

    let q = "graph mining community detection";
    let params = SearchParams::default().with_average_distance(2.5);
    let i1 = InvertedIndex::build(&ds.graph);
    let i2 = InvertedIndex::build(&restored);
    use central::engine::*;
    let a = SeqEngine::new().search(&ds.graph, &ParsedQuery::parse(&i1, q), &params);
    let b = SeqEngine::new().search(&restored, &ParsedQuery::parse(&i2, q), &params);
    assert_eq!(a.answers.len(), b.answers.len());
    for (x, y) in a.answers.iter().zip(&b.answers) {
        assert_eq!(x.depth, y.depth);
        assert_eq!(x.num_nodes(), y.num_nodes());
    }
}

#[test]
fn banks_baselines_run_on_synthetic_data() {
    let ds = SyntheticConfig::tiny(19).generate();
    let index = InvertedIndex::build(&ds.graph);
    let query = ParsedQuery::parse(&index, "neural network gradient");
    let params = BanksParams::default().with_top_k(5).with_node_budget(200_000);
    let b1 = BanksI::new().search(&ds.graph, &query, &params);
    let b2 = BanksII::new().search(&ds.graph, &query, &params);
    for out in [&b1, &b2] {
        for t in &out.answers {
            t.check_invariants().unwrap();
            assert!(t.paths.len() == query.num_keywords());
        }
        for w in out.answers.windows(2) {
            assert!(w[0].score <= w[1].score);
        }
    }
    // BANKS-I settles by distance, so its best answer is never worse than
    // BANKS-II's activation-ordered best (both explore to completion here).
    if let (Some(x), Some(y)) = (b1.answers.first(), b2.answers.first()) {
        assert!(x.score <= y.score + 1e-3);
    }
}

#[test]
fn planted_effectiveness_wikisearch_beats_banks_on_phrase_queries() {
    let ds = PlantedDataset::build(99, 12, 8);
    let index = InvertedIndex::build(&ds.graph);
    let a = kgraph::sampling::estimate_average_distance_sources(&ds.graph, 8, 32, 24, 3).mean;

    let engine = central::engine::ParCpuEngine::new(2);
    let banks = BanksII::new();
    let q7 = ds.queries.iter().find(|q| q.id == "Q7").unwrap();
    let parsed = ParsedQuery::parse(&index, q7.raw);

    let params = SearchParams::default().with_top_k(20).with_average_distance(a);
    use central::engine::KeywordSearchEngine;
    let ws_answers: Vec<Vec<kgraph::NodeId>> = engine
        .search(&ds.graph, &parsed, &params)
        .answers
        .iter()
        .map(|c| c.nodes.clone())
        .collect();
    let banks_answers: Vec<Vec<kgraph::NodeId>> = banks
        .search(&ds.graph, &parsed, &BanksParams::default().with_top_k(20))
        .answers
        .iter()
        .map(|t| t.nodes.clone())
        .collect();
    let ws = EffectivenessReport::evaluate(&ds, q7, &ws_answers);
    let bk = EffectivenessReport::evaluate(&ds, q7, &banks_answers);
    assert!(
        ws.p_at_10 >= bk.p_at_10,
        "WikiSearch ({}) must match/beat BANKS-II ({}) on the phrase-heavy Q7",
        ws.p_at_10,
        bk.p_at_10
    );
    assert!(ws.p_at_10 > 0.5, "WikiSearch should find the planted structures");
}

#[test]
fn memory_footprint_matches_table_iv_structure() {
    let ds = SyntheticConfig::tiny(23).generate();
    let f = MemoryFootprint::for_search(&ds.graph, 8);
    // CSR adjacency dominates pre-storage; the matrix adds n×q bytes.
    assert!(f.pre_storage() > 0);
    assert_eq!(f.node_keyword_matrix, ds.graph.num_nodes() * 8);
    assert!(f.max_running_storage() > f.pre_storage());
}

#[test]
fn unmatched_and_empty_queries_are_graceful_everywhere() {
    let ds = SyntheticConfig::tiny(29).generate();
    let ws = WikiSearch::build(ds.graph);
    assert!(ws.search("").answers.is_empty());
    assert!(ws.search("zzzz qqqq xxxx").answers.is_empty());
    let r = ws.search("the of and");
    assert!(r.answers.is_empty());
    assert!(r.query.is_empty());
}

#[test]
fn single_keyword_queries_return_cooccurrence_answers() {
    let ds = SyntheticConfig::tiny(31).generate();
    let ws = WikiSearch::build(ds.graph);
    let r = ws.search("learning");
    // Single-keyword answers are the keyword nodes themselves (depth 0).
    assert!(!r.answers.is_empty());
    assert!(r.answers.iter().all(|a| a.depth == 0 && a.num_nodes() == 1));
}
