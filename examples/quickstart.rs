//! Quickstart: build a small knowledge graph, run a keyword search, and
//! print the answer graphs.
//!
//! This is the paper's Fig. 1 scenario: the keywords *XML, RDF, SQL*
//! against a query-language neighborhood, answered by a Central Graph
//! centered at "Query language".
//!
//! ```text
//! cargo run -p wikisearch-examples --bin quickstart
//! ```

use datagen::figures::fig4_graph;
use wikisearch_engine::{Backend, WikiSearch};

fn main() {
    // The Fig. 1/Fig. 4 worked-example graph with its activation levels.
    let (graph, activation) = fig4_graph();
    println!(
        "graph: {} nodes, {} directed edges",
        graph.num_nodes(),
        graph.num_directed_edges()
    );

    let mut ws = WikiSearch::build_with(graph, Backend::Sequential);
    // Use the paper's drawn activation levels so the run reproduces the
    // Example 4 trace exactly (normally these come from node weights).
    let params = ws.params().clone().with_top_k(3).with_explicit_activation(activation);
    ws.set_params(params);

    let query = "XML RDF SQL";
    println!("query: {query:?}\n");
    let result = ws.search(query);

    println!(
        "matched {} keywords (kwf {:.1}), {} answers, total {:.2} ms\n",
        result.query.num_keywords(),
        result.kwf,
        result.answers.len(),
        result.profile.total().as_secs_f64() * 1e3
    );
    for (rank, answer) in result.answers.iter().enumerate() {
        println!("#{rank}:");
        print!("{}", ws.render_answer(answer));
        println!();
    }

    // The paper's Example 4: the best answer is centered at v2
    // ("Query language") with depth 4.
    let best = &result.answers[0];
    assert_eq!(ws.graph().node_text(best.central), "Query language");
    assert_eq!(best.depth, 4);
    println!("reproduced Example 4: central node 'Query language' at depth 4 ✓");
}
