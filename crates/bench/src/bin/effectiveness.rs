//! Regenerates the paper's Figs. 11–12 and Table V.
fn main() {
    wikisearch_bench::experiments::effectiveness::run();
}
