//! Aggregate graph statistics — the rows of the paper's Table II.

use crate::graph::KnowledgeGraph;
use crate::sampling::{estimate_average_distance, DistanceEstimate};
use serde::{Deserialize, Serialize};

/// Summary statistics for one dataset, matching the columns of Table II
/// (`# nodes`, `# edges`, sampled `A`, `Deviation`) plus a few extras that
/// the experiments report.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GraphStats {
    /// Dataset display name (e.g. `wiki2018-sim`).
    pub name: String,
    /// Number of nodes.
    pub nodes: usize,
    /// Number of directed edges (triples).
    pub edges: usize,
    /// Number of distinct edge labels.
    pub labels: usize,
    /// Sampled average shortest distance and its deviation.
    pub distance: DistanceEstimate,
    /// Maximum bi-directed degree (hubs dominate search cost).
    pub max_degree: usize,
    /// Mean bi-directed degree.
    pub avg_degree: f64,
}

impl GraphStats {
    /// Compute statistics for `g`, sampling `pairs` node pairs for the
    /// average-distance estimate (the paper samples 10,000).
    pub fn compute(name: &str, g: &KnowledgeGraph, pairs: usize, seed: u64) -> Self {
        let distance = estimate_average_distance(g, pairs, 64, seed);
        let mut max_degree = 0usize;
        for v in g.nodes() {
            max_degree = max_degree.max(g.degree(v));
        }
        let avg_degree = if g.num_nodes() == 0 {
            0.0
        } else {
            g.num_adjacency_entries() as f64 / g.num_nodes() as f64
        };
        GraphStats {
            name: name.to_string(),
            nodes: g.num_nodes(),
            edges: g.num_directed_edges(),
            labels: g.num_labels(),
            distance,
            max_degree,
            avg_degree,
        }
    }

    /// One row in the style of Table II.
    pub fn table_row(&self) -> String {
        format!(
            "{:<16} {:>10} {:>12} {:>8.2} {:>10.2}",
            self.name, self.nodes, self.edges, self.distance.mean, self.distance.deviation
        )
    }

    /// Header matching [`GraphStats::table_row`].
    pub fn table_header() -> String {
        format!(
            "{:<16} {:>10} {:>12} {:>8} {:>10}",
            "dataset", "# nodes", "# edges", "A", "Deviation"
        )
    }
}

/// Histogram of bi-directed degrees in log2 buckets: entry `i` counts
/// nodes with degree in `[2^i, 2^(i+1))` (entry 0 also counts degree 0).
/// A heavy tail across many buckets is the power-law signature the
/// synthetic generator must reproduce (DESIGN.md §3).
pub fn log2_degree_histogram(g: &KnowledgeGraph) -> Vec<usize> {
    let mut hist: Vec<usize> = Vec::new();
    for v in g.nodes() {
        let d = g.degree(v);
        let bucket = if d <= 1 {
            0
        } else {
            (usize::BITS - 1 - d.leading_zeros()) as usize
        };
        if hist.len() <= bucket {
            hist.resize(bucket + 1, 0);
        }
        hist[bucket] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn stats_on_a_small_graph() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a", "a");
        let c = b.add_node("c", "c");
        let d = b.add_node("d", "d");
        b.add_edge(a, c, "p");
        b.add_edge(c, d, "q");
        let g = b.build();
        let s = GraphStats::compute("tiny", &g, 50, 3);
        assert_eq!(s.nodes, 3);
        assert_eq!(s.edges, 2);
        assert_eq!(s.labels, 2);
        assert_eq!(s.max_degree, 2);
        assert!((s.avg_degree - 4.0 / 3.0).abs() < 1e-9);
        assert!(s.distance.mean > 0.0);
    }

    #[test]
    fn degree_histogram_buckets_by_log2() {
        let mut b = GraphBuilder::new();
        let hub = b.add_node("h", "hub");
        for i in 0..9 {
            let v = b.add_node(&format!("v{i}"), "leaf");
            b.add_edge(v, hub, "e");
        }
        let g = b.build();
        let hist = log2_degree_histogram(&g);
        // 9 leaves with degree 1 (bucket 0); hub with degree 9 (bucket 3).
        assert_eq!(hist[0], 9);
        assert_eq!(hist[3], 1);
        assert_eq!(hist.iter().sum::<usize>(), 10);
    }

    #[test]
    fn empty_graph_has_empty_histogram() {
        let g = GraphBuilder::new().build();
        assert!(log2_degree_histogram(&g).is_empty());
    }

    #[test]
    fn table_row_aligns_with_header() {
        let g = GraphBuilder::new().build();
        let s = GraphStats::compute("empty", &g, 10, 1);
        assert_eq!(GraphStats::table_header().len(), s.table_row().len());
    }
}
