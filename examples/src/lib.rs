//! Example binaries for the WikiSearch reproduction live at the crate
//! root (`quickstart.rs`, `wikisearch_repl.rs`, `alpha_tuning.rs`,
//! `compare_banks.rs`, `export_dot.rs`); this library target is empty.
