//! A freelist pool of [`SearchSession`]s for concurrent query serving.
//!
//! One [`SearchSession`] answers one query at a time (`search_session`
//! takes `&mut`), which is exactly right for a single caller but
//! serializes a multi-client service: wrapping the session in a mutex —
//! as `wikisearch-engine` did before this pool existed — funnels every
//! in-flight query through one lock and throws away the intra-query
//! parallelism of the engines underneath.
//!
//! [`SessionPool`] keeps inter-query concurrency and warm state at the
//! same time. It is a mutex-guarded freelist of idle sessions:
//! [`SessionPool::checkout`] pops a warm session (or creates a fresh one
//! when the freelist is empty — the pool grows to the peak number of
//! concurrent queries and no further), hands it out inside a
//! [`PooledSession`] RAII guard, and the guard's `Drop` returns the
//! session to the freelist. The mutex is held only for the `O(1)`
//! push/pop, **never** across a search, so N in-flight queries proceed
//! on N distinct sessions without contending on anything but a pointer
//! swap. Sessions are epoch-stamped ([`crate::state::SearchState`]), so
//! a recycled session re-arms for its next query with a single epoch
//! bump regardless of which query (or engine) used it last.
//!
//! Pool-wide accounting: every guard counts the queries its session
//! absorbed while checked out and folds them into the pool total at
//! checkin, so [`SessionPool::queries_run`] reports the service-level
//! figure the old single-session `queries_run` used to.
//!
//! **Panic quarantine.** If a search panics while a guard is checked out,
//! the guard's `Drop` runs during the unwind. Returning that session to
//! the freelist would hand later queries a session whose internal state
//! stopped at an arbitrary point mid-search — epoch stamping makes that
//! *probably* fine, but a panic means an invariant already failed, so the
//! pool does not gamble: the session is dropped on the spot (quarantined),
//! [`PoolStats::quarantined`] counts it, and the pool simply creates a
//! fresh session the next time the freelist runs dry. A *failed* search
//! (deadline, budget) is not a panic — those sessions check in normally
//! and are reused.

use crate::session::SearchSession;
use parking_lot::Mutex;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A checkout/checkin freelist of warm [`SearchSession`]s.
///
/// ```
/// use central::SessionPool;
///
/// let pool = SessionPool::new();
/// {
///     let mut session = pool.checkout();   // fresh: the freelist is empty
///     let _ = &mut *session;               // &mut SearchSession
/// }                                        // checkin on drop
/// let again = pool.checkout();             // the same warm session
/// assert_eq!(again.session_id(), 0);
/// assert_eq!(pool.sessions_created(), 1);
/// ```
#[derive(Default)]
pub struct SessionPool {
    /// Idle sessions, tagged with their pool-assigned id. A `Vec` used as
    /// a stack: the most recently checked-in (cache-warmest) session is
    /// handed out first.
    free: Mutex<Vec<(u64, SearchSession)>>,
    /// Next session id (== number of sessions ever created).
    next_id: AtomicU64,
    /// Queries completed through checked-in guards (pool-wide total).
    completed: AtomicU64,
    /// Guards currently alive.
    in_flight: AtomicUsize,
    /// Sessions destroyed instead of checked in because their guard was
    /// dropped during a panic unwind.
    quarantined: AtomicU64,
}

impl SessionPool {
    /// An empty pool; sessions are created on demand by
    /// [`SessionPool::checkout`].
    pub fn new() -> Self {
        Self::default()
    }

    /// A pool pre-stocked with `n` (cold) sessions, so the first `n`
    /// concurrent checkouts skip even the cheap `SearchSession::new`.
    pub fn with_sessions(n: usize) -> Self {
        let pool = Self::new();
        let mut free = pool.free.lock();
        for _ in 0..n {
            let id = pool.next_id.fetch_add(1, Ordering::Relaxed);
            free.push((id, SearchSession::new()));
        }
        drop(free);
        pool
    }

    /// Check a session out of the pool. Pops the warmest idle session, or
    /// creates a fresh one when all sessions are in flight. The returned
    /// guard derefs to `&mut SearchSession` and checks the session back
    /// in on drop.
    pub fn checkout(&self) -> PooledSession<'_> {
        let popped = self.free.lock().pop();
        let (id, session) = popped.unwrap_or_else(|| {
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            (id, SearchSession::new())
        });
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        let queries_at_checkout = session.queries_run();
        PooledSession { pool: self, id, session: Some(session), queries_at_checkout }
    }

    /// Total queries answered through sessions of this pool and already
    /// checked back in. (Queries run by a guard still in flight are folded
    /// in when that guard drops.)
    pub fn queries_run(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Number of idle sessions currently in the freelist.
    pub fn idle_sessions(&self) -> usize {
        self.free.lock().len()
    }

    /// Number of sessions ever created — the peak number of concurrent
    /// checkouts the pool has absorbed.
    pub fn sessions_created(&self) -> usize {
        self.next_id.load(Ordering::Relaxed) as usize
    }

    /// Number of guards currently checked out.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Number of sessions quarantined after a panic unwound through their
    /// guard. Quarantined sessions are gone for good; the pool recreates
    /// capacity on demand.
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// One consistent-enough snapshot of the pool counters, for status
    /// endpoints (the CLI server's `STATS` line). Each field is read
    /// atomically; the set is not a transaction, which is fine for
    /// monitoring output.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            queries_run: self.queries_run(),
            sessions_created: self.sessions_created(),
            idle_sessions: self.idle_sessions(),
            in_flight: self.in_flight(),
            quarantined: self.quarantined(),
        }
    }

    /// Checkin path shared by `Drop` (and tests): fold the guard's query
    /// delta into the pool total and push the session back on the
    /// freelist.
    fn checkin(&self, id: u64, session: SearchSession, queries_at_checkout: u64) {
        let delta = session.queries_run() - queries_at_checkout;
        self.completed.fetch_add(delta, Ordering::Relaxed);
        self.free.lock().push((id, session));
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Quarantine path: destroy a session whose guard dropped during a
    /// panic unwind. The session never rejoins the freelist.
    fn quarantine(&self, session: SearchSession) {
        drop(session);
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// A snapshot of a [`SessionPool`]'s counters (see [`SessionPool::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct PoolStats {
    /// Queries completed through checked-in sessions.
    pub queries_run: u64,
    /// Sessions ever created (the pool's concurrency peak).
    pub sessions_created: usize,
    /// Sessions idle in the freelist.
    pub idle_sessions: usize,
    /// Guards currently checked out.
    pub in_flight: usize,
    /// Sessions destroyed because a panic unwound through their guard.
    pub quarantined: u64,
}

/// RAII guard over one checked-out [`SearchSession`].
///
/// Derefs to the session; dropping the guard returns the session to its
/// [`SessionPool`] and folds the queries it ran into the pool total.
pub struct PooledSession<'a> {
    pool: &'a SessionPool,
    id: u64,
    /// Always `Some` until `Drop` takes it.
    session: Option<SearchSession>,
    queries_at_checkout: u64,
}

impl PooledSession<'_> {
    /// The pool-assigned id of the checked-out session. Two concurrently
    /// live guards of one pool never report the same id — that is the
    /// pool's exclusivity contract, and what the contention tests assert.
    pub fn session_id(&self) -> u64 {
        self.id
    }
}

impl Deref for PooledSession<'_> {
    type Target = SearchSession;
    fn deref(&self) -> &SearchSession {
        self.session.as_ref().expect("session present until drop")
    }
}

impl DerefMut for PooledSession<'_> {
    fn deref_mut(&mut self) -> &mut SearchSession {
        self.session.as_mut().expect("session present until drop")
    }
}

impl Drop for PooledSession<'_> {
    fn drop(&mut self) {
        if let Some(session) = self.session.take() {
            if std::thread::panicking() {
                // A panic is unwinding through this guard: the session's
                // state stopped mid-search at an arbitrary point, so it is
                // quarantined rather than recycled.
                self.pool.quarantine(session);
            } else {
                self.pool.checkin(self.id, session, self.queries_at_checkout);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{KeywordSearchEngine, SeqEngine};
    use crate::SearchParams;
    use kgraph::GraphBuilder;
    use std::collections::HashSet;
    use textindex::{InvertedIndex, ParsedQuery};

    fn fixture() -> (kgraph::KnowledgeGraph, InvertedIndex) {
        let mut b = GraphBuilder::new();
        let x = b.add_node("x", "alpha");
        let y = b.add_node("y", "beta");
        let m = b.add_node("m", "middle");
        b.add_edge(x, m, "e");
        b.add_edge(y, m, "e");
        let g = b.build();
        let idx = InvertedIndex::build(&g);
        (g, idx)
    }

    #[test]
    fn sequential_checkouts_reuse_one_session() {
        let (g, idx) = fixture();
        let q = ParsedQuery::parse(&idx, "alpha beta");
        let engine = SeqEngine::new();
        let pool = SessionPool::new();
        for _ in 0..5 {
            let mut session = pool.checkout();
            assert_eq!(session.session_id(), 0, "freelist must hand the warm session back");
            let out = engine.search_session(&mut session, &g, &q, &SearchParams::default());
            assert!(!out.answers.is_empty());
        }
        assert_eq!(pool.sessions_created(), 1);
        assert_eq!(pool.idle_sessions(), 1);
        assert_eq!(pool.queries_run(), 5);
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn concurrent_checkouts_get_distinct_sessions() {
        let pool = SessionPool::new();
        let a = pool.checkout();
        let b = pool.checkout();
        let c = pool.checkout();
        assert_eq!(pool.in_flight(), 3);
        let ids: HashSet<u64> =
            [a.session_id(), b.session_id(), c.session_id()].into_iter().collect();
        assert_eq!(ids.len(), 3, "three live guards, three distinct sessions");
        drop(a);
        drop(b);
        drop(c);
        assert_eq!(pool.sessions_created(), 3);
        assert_eq!(pool.idle_sessions(), 3);
        // The pool does not grow past its in-flight peak.
        let d = pool.checkout();
        drop(d);
        assert_eq!(pool.sessions_created(), 3);
    }

    #[test]
    fn queries_fold_into_the_pool_total_at_checkin() {
        let (g, idx) = fixture();
        let q = ParsedQuery::parse(&idx, "alpha beta");
        let engine = SeqEngine::new();
        let pool = SessionPool::new();
        let mut guard = pool.checkout();
        engine.search_session(&mut guard, &g, &q, &SearchParams::default());
        engine.search_session(&mut guard, &g, &q, &SearchParams::default());
        assert_eq!(pool.queries_run(), 0, "in-flight queries fold in at checkin");
        drop(guard);
        assert_eq!(pool.queries_run(), 2);
        // A recycled session keeps its own counter; the pool only adds the
        // new guard's delta.
        let mut guard = pool.checkout();
        engine.search_session(&mut guard, &g, &q, &SearchParams::default());
        drop(guard);
        assert_eq!(pool.queries_run(), 3);
    }

    #[test]
    fn stats_snapshot_mirrors_the_individual_counters() {
        let pool = SessionPool::new();
        let guard = pool.checkout();
        let stats = pool.stats();
        assert_eq!(stats.sessions_created, 1);
        assert_eq!(stats.in_flight, 1);
        assert_eq!(stats.idle_sessions, 0);
        assert_eq!(stats.queries_run, 0);
        drop(guard);
        let stats = pool.stats();
        assert_eq!(stats.in_flight, 0);
        assert_eq!(stats.idle_sessions, 1);
    }

    #[test]
    fn prewarmed_pool_serves_without_creating() {
        let pool = SessionPool::with_sessions(2);
        assert_eq!(pool.sessions_created(), 2);
        assert_eq!(pool.idle_sessions(), 2);
        let a = pool.checkout();
        let b = pool.checkout();
        assert!(a.session_id() < 2 && b.session_id() < 2);
        drop(a);
        drop(b);
        assert_eq!(pool.sessions_created(), 2);
    }

    #[test]
    fn panicking_guard_quarantines_its_session() {
        let pool = SessionPool::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = pool.checkout();
            panic!("simulated worker crash");
        }));
        assert!(result.is_err());
        assert_eq!(pool.quarantined(), 1);
        assert_eq!(pool.in_flight(), 0);
        assert_eq!(pool.idle_sessions(), 0, "a quarantined session never rejoins the freelist");
        // The pool recovers by creating a fresh session on demand.
        let guard = pool.checkout();
        assert_eq!(guard.session_id(), 1);
        drop(guard);
        assert_eq!(pool.idle_sessions(), 1);
        assert_eq!(pool.stats().quarantined, 1);
    }

    #[test]
    fn clean_drops_do_not_quarantine() {
        let pool = SessionPool::new();
        drop(pool.checkout());
        assert_eq!(pool.quarantined(), 0);
        assert_eq!(pool.idle_sessions(), 1);
    }

    #[test]
    fn checkout_under_contention_never_aliases() {
        // 8 threads × 64 checkouts; a shared "live ids" set proves no two
        // guards ever hold the same session at the same time.
        let pool = SessionPool::new();
        let live: Mutex<HashSet<u64>> = Mutex::new(HashSet::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..64 {
                        let guard = pool.checkout();
                        assert!(
                            live.lock().insert(guard.session_id()),
                            "session {} handed to two live guards",
                            guard.session_id()
                        );
                        std::thread::yield_now();
                        assert!(live.lock().remove(&guard.session_id()));
                        drop(guard);
                    }
                });
            }
        });
        assert_eq!(pool.in_flight(), 0);
        assert!(pool.sessions_created() <= 8, "pool must not outgrow its in-flight peak");
        assert_eq!(pool.idle_sessions(), pool.sessions_created());
    }
}
