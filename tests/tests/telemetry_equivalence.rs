//! The telemetry form of the workspace's central correctness property:
//! observing a query must never change it. A [`WikiSearch`] with the
//! full telemetry surface armed — fleet-wide query IDs passed through
//! the `_tagged` entry points, full tracing (which on the remote path
//! also turns on cross-process span collection), a live sample ring fed
//! between queries — must be *byte-identical* to a default engine with
//! none of that: same answers, same per-keyword hitting paths, same
//! score bits, same statistics, and the same structured error classes
//! when a budget trips.
//!
//! The property runs across all four backends × three execution shapes
//! (monolithic in-process, in-process sharded scatter-gather, remote
//! workers over real TCP), because each shape has its own telemetry
//! hooks: the facade's recent-query ring, the sharded coordinator's
//! per-shard pools, and the remote coordinator's span piggybacking.

use central::shard::DEFAULT_PARTITION_SEED;
use central::{QueryBudget, RemoteOptions, ShardWorker, StaticAddrs, TelemetrySample, TraceLevel};
use kgraph::KnowledgeGraph;
use proptest::prelude::*;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;
use wikisearch_engine::{Backend, WikiSearch, WikiSearchResult};

/// Same overlap-heavy pool the other equivalence properties use.
const WORDS: &[&str] = &["alpha", "beta", "gamma", "delta", "omega", "sigma", "kappa", "lambda"];

/// The execution shapes the property covers.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    /// Monolithic in-process engine behind the session pool.
    InProcess,
    /// In-process sharded scatter-gather over 2 shards.
    Sharded,
    /// Remote coordinator over 2 in-process TCP workers.
    Remote,
}

const MODES: [Mode; 3] = [Mode::InProcess, Mode::Sharded, Mode::Remote];

/// Deterministic supervision knobs for in-process fleets (mirrors
/// `remote_equivalence`): no heartbeat thread, minimal retry budget.
fn test_opts() -> RemoteOptions {
    RemoteOptions {
        attempts: 1,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(2),
        connect_timeout: Duration::from_millis(500),
        heartbeat: None,
        ..RemoteOptions::default()
    }
}

/// Build one facade in the given shape. Remote mode spawns its own
/// worker fleet — two engines never share workers, so neither can
/// perturb the other through connection state.
fn build(graph: KnowledgeGraph, backend: Backend, mode: Mode) -> WikiSearch {
    match mode {
        Mode::InProcess => WikiSearch::build_with(graph, backend),
        Mode::Sharded => WikiSearch::open_sharded(graph, backend, 2),
        Mode::Remote => {
            let addrs: Vec<std::net::SocketAddr> = (0..2)
                .map(|i| ShardWorker::spawn_local(&graph, 2, i, DEFAULT_PARTITION_SEED))
                .collect();
            let mut ws = WikiSearch::build_with(graph, backend);
            ws.set_remote_shards(2, Arc::new(StaticAddrs(addrs)), test_opts());
            ws
        }
    }
}

#[derive(Debug, Clone)]
struct Case {
    nodes: usize,
    texts: Vec<Vec<usize>>,     // word indices per node
    edges: Vec<(usize, usize)>, // node index pairs
    queries: Vec<Vec<usize>>,   // word indices per query
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (2usize..16, 2usize..5).prop_flat_map(|(nodes, nqueries)| {
        let texts =
            proptest::collection::vec(proptest::collection::vec(0usize..WORDS.len(), 1..3), nodes);
        let edges = proptest::collection::vec((0usize..nodes, 0usize..nodes), 1..40);
        let queries = proptest::collection::vec(
            proptest::collection::vec(0usize..WORDS.len(), 2..4),
            nqueries,
        );
        (texts, edges, queries).prop_map(move |(texts, edges, queries)| Case {
            nodes,
            texts,
            edges,
            queries,
        })
    })
}

fn build_graph(case: &Case) -> KnowledgeGraph {
    let mut b = kgraph::GraphBuilder::new();
    for (i, words) in case.texts.iter().enumerate() {
        let text: Vec<&str> = words.iter().map(|&w| WORDS[w]).collect();
        b.add_node(&format!("n{i}"), &text.join(" "));
    }
    for (idx, &(s, d)) in case.edges.iter().enumerate() {
        if s != d {
            let s = b.node(&format!("n{s}")).unwrap();
            let d = b.node(&format!("n{d}")).unwrap();
            b.add_edge(s, d, if idx % 3 == 0 { "p" } else { "q" });
        }
    }
    let _ = case.nodes;
    b.build()
}

/// Everything observable about one search result except timing and the
/// telemetry surface itself (qid, trace), as one comparable string:
/// keyword grouping, unmatched words, answers with their
/// order-sensitive per-keyword parts, score bits, the full statistics
/// block including the level trace, and the degraded flag.
fn digest(r: &WikiSearchResult) -> String {
    let mut s = String::new();
    write!(
        s,
        "groups:{:?} unmatched:{:?} kwf:{} degraded:{} ",
        r.query.groups, r.query.unmatched, r.kwf, r.degraded
    )
    .unwrap();
    write!(
        s,
        "stats:{}/{}/{}/{:?} ",
        r.stats.last_level, r.stats.central_candidates, r.stats.peak_frontier, r.stats.trace
    )
    .unwrap();
    for a in &r.answers {
        write!(
            s,
            "[c:{:?} d:{} n:{:?} e:{:?} kn:{:?} ke:{:?} s:{}]",
            a.central,
            a.depth,
            a.nodes,
            a.edges,
            a.keyword_nodes,
            a.keyword_edges,
            a.score.to_bits()
        )
        .unwrap();
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// For every backend × execution shape, a query stream answered with
    /// the full telemetry surface armed is byte-identical to the same
    /// stream on a default engine — and when a tight budget trips, both
    /// engines raise the same structured error class.
    #[test]
    fn telemetry_never_perturbs_answers(case in case_strategy()) {
        let backends =
            [Backend::Sequential, Backend::ParCpu(2), Backend::GpuStyle(2), Backend::DynPar(2)];
        for backend in backends {
            for mode in MODES {
                let plain = build(build_graph(&case), backend, mode);
                let mut observed = build(build_graph(&case), backend, mode);
                observed.set_telemetry(1, 64);

                let base = plain.params().clone();
                let traced = base.clone().with_trace(TraceLevel::Full);
                let unlimited = QueryBudget::unlimited();
                let tight = QueryBudget::unlimited().with_max_expansions(2);

                for (i, q) in case.queries.iter().enumerate() {
                    let raw: Vec<&str> = q.iter().map(|&w| WORDS[w]).collect();
                    let raw = raw.join(" ");
                    // Every other step runs under a budget tight enough
                    // to trip on most graphs: error classes must agree
                    // exactly, telemetry on or off.
                    let budget = if i % 2 == 1 { &tight } else { &unlimited };
                    let want = plain.try_search_with_params(&raw, &base, budget);
                    // The observed engine runs the heavyweight path: a
                    // caller-assigned fleet-wide qid, full tracing (span
                    // collection over remote workers), and a telemetry
                    // sample recorded mid-stream.
                    observed.telemetry().record_sample(&TelemetrySample {
                        t_us: (i as u64 + 1) * 1_000,
                        served: i as u64,
                        snapshot: observed.metrics_snapshot(),
                    });
                    let got = observed.try_search_with_params_tagged(
                        &raw,
                        &traced,
                        budget,
                        1_000 + i as u64,
                    );
                    let label = format!("{backend:?} {mode:?} step {i} {raw:?}");
                    match (got, want) {
                        (Ok(got), Ok(want)) => {
                            prop_assert_eq!(digest(&got), digest(&want), "diverged: {}", label);
                            // The telemetry surface itself did its job
                            // without touching the answer bytes above.
                            prop_assert_eq!(got.qid, 1_000 + i as u64, "qid lost: {}", label);
                            let trace = got.trace.as_deref().expect("traced search carries a trace");
                            prop_assert_eq!(trace.qid, Some(1_000 + i as u64), "{}", label);
                        }
                        (Err(got), Err(want)) => {
                            prop_assert_eq!(
                                got.kind(),
                                want.kind(),
                                "error class diverged: {}",
                                label
                            );
                        }
                        (got, want) => panic!(
                            "one engine failed, the other answered: {label}: \
                             observed={got:?} plain={want:?}"
                        ),
                    }
                }

                // The observed engine really was observed: every search
                // (successful or not) entered the recent-query ring, and
                // the hand-fed sample ring holds the stream's samples.
                prop_assert!(observed.telemetry().slowest_recent().is_some());
                prop_assert_eq!(
                    observed.telemetry().samples(),
                    case.queries.len() as u64,
                    "{:?}",
                    mode
                );
            }
        }
    }
}

/// Deterministic corner: an empty parse (no keyword matches anything)
/// and a single-node graph answer identically with telemetry on or off,
/// in every shape — shrunken proptest cases rarely land exactly here.
#[test]
fn degenerate_queries_are_unperturbed_in_every_shape() {
    let graph = || {
        let mut b = kgraph::GraphBuilder::new();
        b.add_node("solo", "alpha beta");
        b.build()
    };
    for mode in MODES {
        let plain = build(graph(), Backend::Sequential, mode);
        let mut observed = build(graph(), Backend::Sequential, mode);
        observed.set_telemetry(1, 8);
        let traced = plain.params().clone().with_trace(TraceLevel::Full);
        let budget = QueryBudget::unlimited();
        for q in ["alpha beta", "alpha", "zzz nothing", ""] {
            let want = plain.try_search(q, &budget).map(|r| digest(&r));
            let got = observed
                .try_search_with_params_tagged(q, &traced, &budget, 7)
                .map(|r| digest(&r));
            match (got, want) {
                (Ok(got), Ok(want)) => assert_eq!(got, want, "{mode:?} {q:?}"),
                (Err(got), Err(want)) => {
                    assert_eq!(got.kind(), want.kind(), "{mode:?} {q:?}")
                }
                (got, want) => panic!("{mode:?} {q:?}: observed={got:?} plain={want:?}"),
            }
        }
    }
}
