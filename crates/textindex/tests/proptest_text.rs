//! Property tests of the text pipeline: the stemmer is total and
//! shrinking, analysis is deterministic, and index lookups agree with a
//! naive scan.

use kgraph::GraphBuilder;
use proptest::prelude::*;
use textindex::analyzer::analyze_unique;
use textindex::{analyze, porter_stem, tokenize, InvertedIndex};

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn stemmer_is_total_and_never_panics(word in "\\PC{0,24}") {
        let _ = porter_stem(&word);
    }

    #[test]
    fn stemmer_output_is_bounded(word in "[a-z]{1,24}") {
        let s = porter_stem(&word);
        prop_assert!(!s.is_empty());
        // At most one byte longer than the input (the restored 'e').
        prop_assert!(s.len() <= word.len() + 1, "{word} -> {s}");
        prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase()), "{word} -> {s}");
    }

    #[test]
    fn tokenizer_never_emits_empty_or_uppercase(text in "\\PC{0,64}") {
        for t in tokenize(&text) {
            prop_assert!(!t.is_empty());
            prop_assert_eq!(t.to_lowercase(), t.clone());
            prop_assert!(!t.chars().all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn analysis_is_deterministic_and_idempotent_at_set_level(text in "[a-zA-Z ]{0,48}") {
        let a = analyze(&text);
        let b = analyze(&text);
        prop_assert_eq!(&a, &b);
        // analyzing the joined analysis keeps the same unique term set
        let joined = analyze_unique(&text).join(" ");
        let re: std::collections::HashSet<String> =
            analyze_unique(&joined).into_iter().collect();
        let orig: std::collections::HashSet<String> =
            analyze_unique(&text).into_iter().collect();
        // Re-stemming can only merge terms further, never invent new text
        // that the index would miss at query time (queries pass through
        // the same single-pass pipeline).
        prop_assert!(re.len() <= orig.len());
    }

    #[test]
    fn index_lookup_agrees_with_naive_scan(
        texts in proptest::collection::vec("[a-z]{1,6}( [a-z]{1,6}){0,2}", 1..16),
        probe in "[a-z]{1,6}",
    ) {
        let mut b = GraphBuilder::new();
        for (i, t) in texts.iter().enumerate() {
            b.add_node(&format!("n{i}"), t);
        }
        let g = b.build();
        let idx = InvertedIndex::build(&g);
        let term = analyze_unique(&probe);
        prop_assume!(!term.is_empty());
        let term = &term[0];
        let naive: Vec<_> = g
            .nodes()
            .filter(|&v| analyze_unique(g.node_text(v)).contains(term))
            .collect();
        let posted = idx.lookup_analyzed(term).unwrap_or(&[]);
        prop_assert_eq!(posted, &naive[..]);
    }

    #[test]
    fn query_groups_are_subsets_of_keyword_node_union(
        texts in proptest::collection::vec("[a-z]{1,5}( [a-z]{1,5}){0,2}", 1..12),
        q in "[a-z]{1,5}( [a-z]{1,5}){0,3}",
    ) {
        let mut b = GraphBuilder::new();
        for (i, t) in texts.iter().enumerate() {
            b.add_node(&format!("n{i}"), t);
        }
        let g = b.build();
        let idx = InvertedIndex::build(&g);
        let parsed = textindex::ParsedQuery::parse(&idx, &q);
        for group in &parsed.groups {
            prop_assert!(!group.nodes.is_empty());
            prop_assert!(group.nodes.windows(2).all(|w| w[0] < w[1]));
            for &v in &group.nodes {
                prop_assert!(
                    analyze_unique(g.node_text(v)).contains(&group.term),
                    "node {v} indexed for {:?} but does not contain it",
                    group.term
                );
            }
        }
    }
}
