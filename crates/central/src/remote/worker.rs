//! The shard-worker side of the remote protocol.
//!
//! A [`ShardWorker`] owns exactly one [`ShardPart`] of the deterministic
//! partition — built locally via [`ShardPlan::build_part`] from the
//! `(shards, seed)` contract, never shipped over the wire — and serves
//! coordinator connections over TCP, one thread and one
//! [`SearchState`] per connection. Each connection executes at most one
//! query at a time as a sequence of phase RPCs (see [`super::wire`]);
//! the handlers are line-for-line the per-shard bodies of the in-process
//! fork-join phases in [`crate::shard::ShardedSearch`], which is what the
//! remote-equivalence differential suite leans on.
//!
//! The worker never enforces query budgets itself: it runs an unlimited
//! counting tracker and reports per-level expansion charges back to the
//! coordinator, which owns the query's real [`crate::QueryBudget`] and
//! polls deadlines/caps at exactly the sequence points the in-process
//! driver does. A stalled or runaway worker is therefore bounded by the
//! coordinator's per-RPC timeouts, not by its own cooperation.
//!
//! Any protocol violation — undecodable payload, out-of-sequence opcode,
//! oversized frame — earns one structured [`wire::WireError`] reply
//! (when the stream is still writable) and the connection closes; the
//! framing has no resync point. A worker connection failing can never
//! corrupt another: every connection's state is private.

use super::frame::{read_frame, write_frame};
use super::wire::{self, Hello};
use crate::activation::{ActivationConfig, ActivationMap};
use crate::bottom_up::{self, ExpandCtx};
use crate::model::INFINITE_LEVEL;
use crate::shard::{ShardBackend, ShardPart, ShardPlan};
use crate::state::SearchState;
use crate::trace::ShardSpan;
use crate::QueryBudget;
use kgraph::{KnowledgeGraph, NodeId};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Instant;

/// One shard's worker: the materialized part plus the partition contract
/// it validates handshakes against.
pub struct ShardWorker {
    part: ShardPart,
    shards: u32,
    index: u32,
    seed: u64,
    num_nodes: u64,
    /// Protocol revision this worker speaks. Normally
    /// [`wire::PROTOCOL_VERSION`]; pinned lower by [`Self::with_protocol`]
    /// to reproduce an old worker bit-for-bit in compatibility tests.
    protocol: u32,
}

impl ShardWorker {
    /// Build the worker for shard `index` of an `N = shards` partition of
    /// `graph` under `seed`. Materializes only this shard's part.
    ///
    /// # Panics
    /// Panics when `index >= shards` (same contract as
    /// [`ShardPlan::build_part`]).
    pub fn new(graph: &KnowledgeGraph, shards: usize, index: usize, seed: u64) -> ShardWorker {
        ShardWorker {
            part: ShardPlan::build_part(graph, shards, seed, index),
            shards: shards as u32,
            index: index as u32,
            seed,
            num_nodes: graph.num_nodes() as u64,
            protocol: wire::PROTOCOL_VERSION,
        }
    }

    /// Pin the worker to an older protocol revision. A `version`-1 worker
    /// reproduces the v1 handshake bit-for-bit (strict version equality,
    /// no `version` echo) and never records or ships spans — the
    /// coordinator's compatibility fallback is tested against this.
    pub fn with_protocol(mut self, version: u32) -> ShardWorker {
        self.protocol = version.clamp(wire::MIN_PROTOCOL_VERSION, wire::PROTOCOL_VERSION);
        self
    }

    /// Owned-node count of this worker's part.
    pub fn num_owned(&self) -> u32 {
        self.part.num_owned
    }

    /// Serve coordinator connections on `listener` until the listener
    /// fails (for a process worker: until the process exits). One thread
    /// per connection; connection failures are contained to their thread.
    pub fn serve(self: &Arc<Self>, listener: TcpListener) {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { return };
            let worker = Arc::clone(self);
            std::thread::Builder::new()
                .name(format!("shard-worker-{}-conn", self.index))
                .spawn(move || worker.handle_connection(stream))
                .expect("spawning a worker connection thread");
        }
    }

    /// Bind an ephemeral localhost listener, serve it on a detached
    /// thread, and return the bound address. The in-process test harness
    /// for the remote path.
    pub fn spawn_local(
        graph: &KnowledgeGraph,
        shards: usize,
        index: usize,
        seed: u64,
    ) -> SocketAddr {
        Self::spawn_local_worker(ShardWorker::new(graph, shards, index, seed))
    }

    /// [`Self::spawn_local`] for an already-configured worker (e.g. one
    /// pinned to an older protocol via [`Self::with_protocol`]).
    pub fn spawn_local_worker(worker: ShardWorker) -> SocketAddr {
        let index = worker.index;
        let worker = Arc::new(worker);
        let listener = TcpListener::bind("127.0.0.1:0").expect("binding a worker listener");
        let addr = listener.local_addr().expect("listener has a local addr");
        std::thread::Builder::new()
            .name(format!("shard-worker-{index}"))
            .spawn(move || worker.serve(listener))
            .expect("spawning a worker accept thread");
        addr
    }

    /// Drive one coordinator connection to completion. Public so process
    /// workers and in-process test workers share one code path.
    pub fn handle_connection(&self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        let mut conn = Conn::new(self);
        let mut stream = stream;
        loop {
            let (opcode, payload) = match read_frame(&mut stream) {
                Ok(Some(frame)) => frame,
                Ok(None) => return, // clean coordinator disconnect
                Err(e) => {
                    if e.kind() == io::ErrorKind::InvalidData {
                        send_error(&mut stream, "bad_frame", &e.to_string());
                    }
                    return;
                }
            };
            // The frame is fully read at this point: span wait time is
            // worker-side dispatch latency, never coordinator think time.
            let ready = Instant::now();
            match conn.handle(&mut stream, opcode, &payload, ready) {
                Ok(Flow::Continue) => {}
                Ok(Flow::Close) => return,
                Err(e) => {
                    send_error(&mut stream, e.code, &e.message);
                    return;
                }
            }
        }
    }
}

/// Best-effort structured error reply; the connection closes either way.
fn send_error(stream: &mut TcpStream, code: &str, message: &str) {
    let err = wire::WireError { code: code.to_string(), message: message.to_string() };
    let _ = write_frame(stream, wire::OP_ERROR, &wire::encode(&err));
}

/// Whether the connection keeps serving after a frame.
enum Flow {
    Continue,
    // Only the fault-injection arms close a healthy connection mid-stream.
    #[cfg_attr(not(feature = "fault-inject"), allow(dead_code))]
    Close,
}

/// A protocol failure that earns one error frame before closing.
struct ConnError {
    code: &'static str,
    message: String,
}

impl ConnError {
    fn new(code: &'static str, message: impl Into<String>) -> ConnError {
        ConnError { code, message: message.into() }
    }
}

/// Per-connection state: the search state plus the per-query execution
/// knobs remembered from the last `Start`.
struct Conn<'w> {
    worker: &'w ShardWorker,
    greeted: bool,
    state: SearchState,
    query: Option<QueryCtx>,
    /// Lazily built kernel pool, rebuilt when a query asks for a
    /// different thread count.
    pool: Option<(usize, rayon::ThreadPool)>,
}

/// Execution knobs of the in-flight query on a connection.
struct QueryCtx {
    q: usize,
    backend: ShardBackend,
    config: ActivationConfig,
    /// Explicit activation table remapped onto this shard's locals.
    local_act: Option<Vec<u8>>,
    tracker: crate::budget::BudgetTracker,
    charged_mark: u64,
    frontiers: Vec<u32>,
    /// Fleet-wide query ID from `Start` (protocol v2), echoed on collect.
    qid: Option<u64>,
    /// Per-RPC span accumulator, armed when the coordinator asked for
    /// spans and this worker's protocol carries them. Shipped (taken)
    /// with the collect reply.
    spans: Option<Vec<ShardSpan>>,
}

/// Microseconds between two monotonic instants, saturating at zero.
fn micros(from: Instant, to: Instant) -> u64 {
    to.saturating_duration_since(from).as_micros() as u64
}

impl<'w> Conn<'w> {
    fn new(worker: &'w ShardWorker) -> Conn<'w> {
        Conn { worker, greeted: false, state: SearchState::empty(), query: None, pool: None }
    }

    fn handle(
        &mut self,
        stream: &mut TcpStream,
        opcode: u8,
        payload: &[u8],
        ready: Instant,
    ) -> Result<Flow, ConnError> {
        match opcode {
            wire::OP_HELLO => self.on_hello(stream, payload),
            wire::OP_PING => {
                reply(stream, wire::OP_PONG, &[])?;
                Ok(Flow::Continue)
            }
            wire::OP_START => self.on_start(stream, payload, ready),
            wire::OP_ENQUEUE => self.on_enqueue(stream, ready),
            wire::OP_IDENTIFY => self.on_identify(stream, payload, ready),
            wire::OP_EXPAND => self.on_expand(stream, payload, ready),
            wire::OP_APPLY => self.on_apply(stream, payload, ready),
            wire::OP_COLLECT => self.on_collect(stream, payload, ready),
            other => Err(ConnError::new("bad_frame", format!("unknown opcode {other}"))),
        }
    }

    /// Send a phase reply and, when the query is span-traced, finish the
    /// RPC's span with the measured encode+write time and record it. The
    /// borrow of the query context is re-taken here so handlers can build
    /// their reply payloads with the context borrowed.
    fn finish(
        &mut self,
        stream: &mut TcpStream,
        opcode: u8,
        payload: &[u8],
        span: Option<ShardSpan>,
        encode_from: Instant,
    ) -> Result<Flow, ConnError> {
        reply(stream, opcode, payload)?;
        if let Some(mut span) = span {
            span.encode_us = micros(encode_from, Instant::now());
            if let Some(spans) = self.query.as_mut().and_then(|ctx| ctx.spans.as_mut()) {
                spans.push(span);
            }
        }
        Ok(Flow::Continue)
    }

    fn on_hello(&mut self, stream: &mut TcpStream, payload: &[u8]) -> Result<Flow, ConnError> {
        let hello: Hello = decode(payload)?;
        let w = self.worker;
        // The partition contract is strict — a worker must never serve a
        // differently-cut partition. The protocol version is a *range*:
        // every revision in `MIN..=self` speaks a compatible base schema
        // (the v2 additions are optional fields), so a newer coordinator
        // degrades to the base schema instead of being refused. A worker
        // pinned to protocol 1 reproduces the historical strict-equality
        // check, version included.
        let version_ok = if w.protocol == 1 {
            hello.version == 1
        } else {
            (wire::MIN_PROTOCOL_VERSION..=w.protocol).contains(&hello.version)
        };
        let contract_ok = hello.shards == w.shards
            && hello.shard_index == w.index
            && hello.num_nodes == w.num_nodes
            && hello.seed == w.seed;
        if !version_ok || !contract_ok {
            let expect = Hello {
                version: w.protocol,
                shards: w.shards,
                shard_index: w.index,
                num_nodes: w.num_nodes,
                seed: w.seed,
            };
            return Err(ConnError::new(
                "bad_handshake",
                format!("partition contract mismatch: got {hello:?}, serving {expect:?}"),
            ));
        }
        self.greeted = true;
        let ok = wire::HelloOk {
            shard_index: w.index,
            num_owned: w.part.num_owned,
            // A v1 worker's HelloOk had no version field at all.
            version: (w.protocol >= 2).then_some(w.protocol),
        };
        reply(stream, wire::OP_HELLO_OK, &wire::encode(&ok))?;
        Ok(Flow::Continue)
    }

    fn on_start(
        &mut self,
        stream: &mut TcpStream,
        payload: &[u8],
        ready: Instant,
    ) -> Result<Flow, ConnError> {
        if !self.greeted {
            return Err(ConnError::new("bad_sequence", "START before HELLO"));
        }
        let decode_from = Instant::now();
        let start: wire::Start = decode(payload)?;
        let decode_done = Instant::now();
        let query = start.query.to_query();

        // Network-shaped fault injection (test builds only): the chaos
        // suite asks this worker to misbehave at the wire level.
        #[cfg(feature = "fault-inject")]
        if let Some(fault) = crate::fault::network_fault(&query) {
            match fault {
                crate::fault::NetworkFault::Drop => return Ok(Flow::Close),
                crate::fault::NetworkFault::Stall(d) => std::thread::sleep(d),
                crate::fault::NetworkFault::Garbage => {
                    // An over-cap length header: the coordinator's frame
                    // decoder rejects it deterministically.
                    use std::io::Write as _;
                    let _ = stream.write_all(&[0xFF, 0xFF, 0xFF, 0xFF, 0xEE]);
                    return Ok(Flow::Close);
                }
            }
        }

        let part = &self.worker.part;
        let local = part.localize_query(&query);
        self.state.begin_query(part.graph.num_nodes(), &local);
        let threads = (start.threads as usize).max(1);
        let backend = match start.backend.as_str() {
            "Seq" => ShardBackend::Seq,
            "CPU-Par" => ShardBackend::ParCpu(threads),
            "GPU-Par" => ShardBackend::GpuStyle(threads),
            "CPU-Par-d" => ShardBackend::DynPar(threads),
            other => {
                return Err(ConnError::new("bad_sequence", format!("unknown backend {other:?}")))
            }
        };
        let local_act = start
            .activation
            .as_ref()
            .map(|levels| part.locals.iter().map(|&v| levels[v as usize]).collect());
        // Spans are recorded only when the coordinator asked for them AND
        // this worker's protocol revision can ship them on collect.
        let traced = self.worker.protocol >= 2 && start.spans == Some(true);
        self.query = Some(QueryCtx {
            q: query.num_keywords(),
            backend,
            config: ActivationConfig {
                alpha: start.params.alpha,
                average_distance: start.params.average_distance,
            },
            local_act,
            // Unlimited counting tracker: budgets are the coordinator's
            // job; this one only meters charges for `ExpandOk::charged`.
            tracker: QueryBudget::unlimited().start_counting(),
            charged_mark: 0,
            frontiers: Vec::new(),
            // A v1 worker predates the qid field entirely: never echo it.
            qid: if self.worker.protocol >= 2 {
                start.qid
            } else {
                None
            },
            spans: traced.then(Vec::new),
        });
        let ok = wire::StartOk { keywords: query.num_keywords() as u32 };
        let exec_done = Instant::now();
        let span = traced.then(|| ShardSpan {
            op: "start".to_string(),
            level: None,
            wait_us: micros(ready, decode_from),
            decode_us: micros(decode_from, decode_done),
            exec_us: micros(decode_done, exec_done),
            encode_us: 0,
        });
        self.finish(stream, wire::OP_START_OK, &wire::encode(&ok), span, exec_done)
    }

    fn query_mut(&mut self) -> Result<(&'w ShardPart, &SearchState, &mut QueryCtx), ConnError> {
        let part = &self.worker.part;
        match self.query.as_mut() {
            Some(ctx) => Ok((part, &self.state, ctx)),
            None => Err(ConnError::new("bad_sequence", "phase RPC before START")),
        }
    }

    fn on_enqueue(&mut self, stream: &mut TcpStream, ready: Instant) -> Result<Flow, ConnError> {
        let entered = Instant::now();
        let (part, state, ctx) = self.query_mut()?;
        // Owned nodes only: each global frontier node is drained exactly
        // once, by its owner.
        ctx.frontiers.clear();
        for v in 0..part.num_owned {
            if state.take_frontier_flag(v) {
                ctx.frontiers.push(v);
            }
        }
        let traced = ctx.spans.is_some();
        let ok = wire::EnqueueOk { frontier: ctx.frontiers.len() as u64 };
        let exec_done = Instant::now();
        let span = traced.then(|| ShardSpan {
            op: "enqueue".to_string(),
            level: None,
            wait_us: micros(ready, entered),
            decode_us: 0,
            exec_us: micros(entered, exec_done),
            encode_us: 0,
        });
        self.finish(stream, wire::OP_ENQUEUE_OK, &wire::encode(&ok), span, exec_done)
    }

    fn on_identify(
        &mut self,
        stream: &mut TcpStream,
        payload: &[u8],
        ready: Instant,
    ) -> Result<Flow, ConnError> {
        let decode_from = Instant::now();
        let req: wire::Identify = decode(payload)?;
        let decode_done = Instant::now();
        let (part, state, ctx) = self.query_mut()?;
        let mut newly_local = Vec::new();
        bottom_up::identify_sequential(state, &ctx.frontiers, req.level, &mut newly_local);
        let (mut new_hits, mut deferred) = (0usize, 0usize);
        if req.traced {
            let act = activation(part, ctx);
            new_hits = ctx
                .frontiers
                .iter()
                .map(|&f| (0..ctx.q).filter(|&i| state.hit(f, i) == req.level).count())
                .sum();
            deferred = ctx.frontiers.iter().filter(|&&f| act.level(NodeId(f)) > req.level).count();
        }
        let traced = ctx.spans.is_some();
        let ok = wire::IdentifyOk {
            newly: newly_local.iter().map(|&l| part.locals[l as usize]).collect(),
            new_hits: new_hits as u64,
            deferred: deferred as u64,
        };
        let exec_done = Instant::now();
        let span = traced.then(|| ShardSpan {
            op: "identify".to_string(),
            level: Some(req.level.into()),
            wait_us: micros(ready, decode_from),
            decode_us: micros(decode_from, decode_done),
            exec_us: micros(decode_done, exec_done),
            encode_us: 0,
        });
        self.finish(stream, wire::OP_IDENTIFY_OK, &wire::encode(&ok), span, exec_done)
    }

    fn on_expand(
        &mut self,
        stream: &mut TcpStream,
        payload: &[u8],
        ready: Instant,
    ) -> Result<Flow, ConnError> {
        use rayon::prelude::*;
        let decode_from = Instant::now();
        let req: wire::Expand = decode(payload)?;
        let decode_done = Instant::now();
        let backend = match &self.query {
            Some(ctx) => ctx.backend,
            None => return Err(ConnError::new("bad_sequence", "phase RPC before START")),
        };
        // Parallel kernels run inside a worker-local pool sized to the
        // query's thread request, (re)built only when the size changes.
        let threads = backend.threads();
        let pooled = !matches!(backend, ShardBackend::Seq | ShardBackend::DynPar(_));
        if pooled && self.pool.as_ref().map(|(t, _)| *t) != Some(threads) {
            self.pool = Some((threads, crate::engine::build_pool(threads)));
        }
        let part = &self.worker.part;
        let state = &self.state;
        let ctx = self.query.as_mut().expect("checked above");
        let level = req.level;
        let act = activation(part, ctx);
        let expand_ctx = ExpandCtx { graph: &part.graph, act: &act, state, budget: &ctx.tracker };
        let q = ctx.q;
        let frontiers = &ctx.frontiers;
        match backend {
            ShardBackend::Seq | ShardBackend::DynPar(_) => {
                for &f in frontiers {
                    bottom_up::expand_frontier(&expand_ctx, f, level);
                }
            }
            ShardBackend::ParCpu(_) => {
                let pool = &self.pool.as_ref().expect("pool built above").1;
                pool.install(|| {
                    frontiers
                        .par_iter()
                        .for_each(|&f| bottom_up::expand_frontier(&expand_ctx, f, level));
                });
            }
            ShardBackend::GpuStyle(_) => {
                let pool = &self.pool.as_ref().expect("pool built above").1;
                pool.install(|| {
                    (0..frontiers.len() * q).into_par_iter().for_each(|w| {
                        bottom_up::expand_work_item(&expand_ctx, frontiers[w / q], w % q, level);
                    });
                });
            }
        }
        // Boundary scan: cells that became `level + 1` this round.
        let mut outbox = Vec::new();
        for &bl in &part.boundary {
            for i in 0..q {
                if state.hit(bl, i) == level + 1 {
                    outbox.push((part.locals[bl as usize], i as u32));
                }
            }
        }
        let total = ctx.tracker.expansions();
        let charged = total - ctx.charged_mark;
        ctx.charged_mark = total;
        let traced = ctx.spans.is_some();
        let ok = wire::ExpandOk { outbox, charged };
        let exec_done = Instant::now();
        let span = traced.then(|| ShardSpan {
            op: "expand".to_string(),
            level: Some(level.into()),
            wait_us: micros(ready, decode_from),
            decode_us: micros(decode_from, decode_done),
            exec_us: micros(decode_done, exec_done),
            encode_us: 0,
        });
        self.finish(stream, wire::OP_EXPAND_OK, &wire::encode(&ok), span, exec_done)
    }

    fn on_apply(
        &mut self,
        stream: &mut TcpStream,
        payload: &[u8],
        ready: Instant,
    ) -> Result<Flow, ConnError> {
        let decode_from = Instant::now();
        let req: wire::Apply = decode(payload)?;
        let decode_done = Instant::now();
        let (part, state, ctx) = self.query_mut()?;
        // Membership filtering over the broadcast union — equivalent to
        // the in-process holders routing: a pair reaches exactly the
        // shards holding a replica, and only still-∞ cells accept it.
        // Frontier flags rise only on owned replicas, the only ones
        // whose flags are ever scanned.
        for &(v, i) in &req.pairs {
            if let Some(&l) = part.local_index.get(&v) {
                if state.hit(l, i as usize) == INFINITE_LEVEL {
                    state.set_hit(l, i as usize, req.level + 1);
                    if l < part.num_owned {
                        state.mark_frontier(l);
                    }
                }
            }
        }
        let traced = ctx.spans.is_some();
        let exec_done = Instant::now();
        let span = traced.then(|| ShardSpan {
            op: "apply".to_string(),
            level: Some(req.level.into()),
            wait_us: micros(ready, decode_from),
            decode_us: micros(decode_from, decode_done),
            exec_us: micros(decode_done, exec_done),
            encode_us: 0,
        });
        self.finish(stream, wire::OP_APPLY_OK, &[], span, exec_done)
    }

    fn on_collect(
        &mut self,
        stream: &mut TcpStream,
        payload: &[u8],
        ready: Instant,
    ) -> Result<Flow, ConnError> {
        let decode_from = Instant::now();
        let req: wire::Collect = decode(payload)?;
        let decode_done = Instant::now();
        let (part, state, ctx) = self.query_mut()?;
        let limit = if req.include_halos {
            part.locals.len()
        } else {
            part.num_owned as usize
        };
        let mut rows = Vec::new();
        for l in 0..limit as u32 {
            let hits: Vec<u8> = (0..ctx.q).map(|i| state.hit(l, i)).collect();
            if hits.iter().all(|&h| h == INFINITE_LEVEL) {
                continue; // untouched row: the coordinator defaults it
            }
            rows.push(wire::WireRow {
                node: part.locals[l as usize],
                hits,
                keyword: state.is_keyword_node(l),
                central: state.central_depth(l),
            });
        }
        let qid = ctx.qid;
        let mut spans = ctx.spans.take();
        let exec_done = Instant::now();
        if let Some(spans) = spans.as_mut() {
            spans.push(ShardSpan {
                op: "collect".to_string(),
                level: None,
                wait_us: micros(ready, decode_from),
                decode_us: micros(decode_from, decode_done),
                exec_us: micros(decode_done, exec_done),
                // This span ships inside the reply it measures, so its own
                // encode+write time cannot be self-reported; the
                // coordinator attributes it to wire time.
                encode_us: 0,
            });
        }
        let ok = wire::CollectOk { rows, qid, spans };
        reply(stream, wire::OP_COLLECT_OK, &wire::encode(&ok))?;
        Ok(Flow::Continue)
    }
}

/// The activation map for the in-flight query on this shard.
fn activation<'a>(part: &'a ShardPart, ctx: &'a QueryCtx) -> ActivationMap<'a> {
    match &ctx.local_act {
        Some(table) => ActivationMap::Explicit(table),
        None => ActivationMap::Computed { graph: &part.graph, config: ctx.config },
    }
}

fn decode<T: serde::Deserialize>(payload: &[u8]) -> Result<T, ConnError> {
    wire::decode(payload).map_err(|e| ConnError::new("bad_frame", e))
}

fn reply(stream: &mut TcpStream, opcode: u8, payload: &[u8]) -> Result<(), ConnError> {
    write_frame(stream, opcode, payload)
        .map_err(|e| ConnError::new("internal", format!("reply failed: {e}")))
}

/// Read one frame, failing on EOF (used by clients that expect a reply).
pub(super) fn expect_frame(r: &mut impl Read) -> io::Result<(u8, Vec<u8>)> {
    read_frame(r)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed mid conversation"))
}
