//! Concurrent-serving integration test: `serve --workers 4` hammered by
//! interleaved clients must answer every query with exactly the bytes a
//! sequential `WikiSearch::search` over the same graph produces (modulo
//! the per-response `"ms"` timing field, which is stripped before
//! comparison). This is the service-level form of the engine-equivalence
//! property: pooled sessions + connection workers must not change a
//! single answer.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use wikisearch_engine::{Backend, WikiSearch};

/// Serialize a response document with its volatile fields removed (the
/// `ms` timing and the arrival-ordered `qid`), so two docs can be
/// compared byte-for-byte.
fn without_ms(doc: &serde_json::Value) -> String {
    match doc {
        serde_json::Value::Object(entries) => {
            let kept: Vec<(String, serde_json::Value)> =
                entries.iter().filter(|(k, _)| k != "ms" && k != "qid").cloned().collect();
            serde_json::Value::Object(kept).to_string()
        }
        other => other.to_string(),
    }
}

/// The exact response document `serve` produces for one query (minus
/// timing), computed through the public engine API.
fn expected_response(ws: &WikiSearch, q: &str) -> String {
    let result = ws.search(q);
    let answers: Vec<serde_json::Value> = result
        .answers
        .iter()
        .map(|a| {
            serde_json::json!({
                "central": ws.graph().node_text(a.central),
                "depth": a.depth,
                "score": a.score,
                "nodes": a.nodes.len(),
                "edges": a.edges.len(),
            })
        })
        .collect();
    without_ms(&serde_json::json!({
        "query": q,
        "answers": answers,
        "unmatched": result.query.unmatched,
        "degraded": result.degraded,
    }))
}

#[test]
fn concurrent_clients_get_sequential_answers() {
    // A synthetic KB large enough that queries differ in depth/answers.
    let cfg = {
        let mut c = datagen::synthetic::SyntheticConfig::tiny(42);
        c.num_entities = 400;
        c
    };
    let graph = cfg.generate().graph;
    let path = std::env::temp_dir()
        .join(format!("ws-serve-conc-{}.tsv", std::process::id()))
        .to_string_lossy()
        .into_owned();
    std::fs::write(&path, kgraph::io::to_tsv(&graph)).unwrap();

    // Interleaved workload: per-client query lists drawn from the same
    // vocabulary the generator labels nodes with, plus edge cases that
    // must still be answered deterministically.
    let mut workload = datagen::QueryWorkload::new(7);
    let mut queries: Vec<String> = workload.batch(3, 12);
    queries.push("learning".into());
    queries.push("zzz unmatched zzz".into());
    queries.push("machine learning inference".into());
    queries.push("database systems".into());
    let total = queries.len();

    // Reference: a sequential engine over the same graph file.
    let reference = WikiSearch::build_with(graph, Backend::Sequential);
    let expected: Vec<String> = queries.iter().map(|q| expected_response(&reference, q)).collect();

    // Spawn the server in-process, draining after exactly `total` queries.
    let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let port = probe.local_addr().unwrap().port();
    drop(probe);
    let argv: Vec<String> = format!(
        "serve --graph {path} --port {port} --backend seq --workers 4 --max-requests {total}"
    )
    .split_whitespace()
    .map(String::from)
    .collect();
    let server = std::thread::spawn(move || {
        let mut out = Vec::new();
        let code = wikisearch_cli::run(&argv, &mut out);
        (code, String::from_utf8(out).unwrap())
    });

    // 4 clients, queries dealt round-robin, all connections interleaved.
    let got: Vec<(usize, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|client| {
                let queries = &queries;
                scope.spawn(move || {
                    let mut stream = None;
                    for _ in 0..100 {
                        if let Ok(s) = TcpStream::connect(("127.0.0.1", port)) {
                            stream = Some(s);
                            break;
                        }
                        std::thread::sleep(std::time::Duration::from_millis(20));
                    }
                    let mut stream = stream.expect("server reachable");
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut responses = Vec::new();
                    for (qi, q) in queries.iter().enumerate() {
                        if qi % 4 != client {
                            continue;
                        }
                        writeln!(stream, "QUERY {q}").unwrap();
                        let mut line = String::new();
                        reader.read_line(&mut line).unwrap();
                        responses.push((qi, line));
                        std::thread::yield_now();
                    }
                    let _ = writeln!(stream, "QUIT");
                    responses
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });

    let (code, log) = server.join().unwrap();
    assert_eq!(code, 0, "{log}");
    assert!(log.contains(&format!("served {total} queries")), "{log}");

    assert_eq!(got.len(), total, "every query answered exactly once");
    for (qi, line) in &got {
        let doc: serde_json::Value = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("query {qi}: bad JSON {e}: {line}"));
        assert!(doc.get("error").is_none(), "query {qi} errored: {line}");
        assert_eq!(
            without_ms(&doc),
            expected[*qi],
            "query {qi} ({:?}) diverged from the sequential reference",
            queries[*qi]
        );
    }

    let _ = std::fs::remove_file(path);
}

/// Protocol edge cases on one connection: unknown commands and empty
/// queries come back as one-line JSON errors, `STATS` reports live pool
/// and cache counters without counting toward `--max-requests`, and a
/// reworded repeat of an earlier query is answered from the cache with
/// the same answers while still echoing its own raw query string.
#[test]
fn error_paths_and_stats_are_one_line_json() {
    let path = std::env::temp_dir()
        .join(format!("ws-serve-stats-{}.tsv", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let mut b = kgraph::GraphBuilder::new();
    let x = b.add_node("x", "xml");
    let q = b.add_node("q", "query language");
    let s = b.add_node("s", "sql");
    b.add_edge(x, q, "rel");
    b.add_edge(s, q, "rel");
    std::fs::write(&path, kgraph::io::to_tsv(&b.build())).unwrap();

    let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let port = probe.local_addr().unwrap().port();
    drop(probe);
    let argv: Vec<String> = format!(
        "serve --graph {path} --port {port} --backend seq --max-requests 4 --cache-capacity 64k"
    )
    .split_whitespace()
    .map(String::from)
    .collect();
    let server = std::thread::spawn(move || {
        let mut out = Vec::new();
        let code = wikisearch_cli::run(&argv, &mut out);
        (code, String::from_utf8(out).unwrap())
    });

    let mut stream = None;
    for _ in 0..100 {
        if let Ok(s) = TcpStream::connect(("127.0.0.1", port)) {
            stream = Some(s);
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    let mut stream = stream.expect("server reachable");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut send = |req: &str| -> serde_json::Value {
        writeln!(stream, "{req}").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.ends_with('\n'), "{req}: response is one full line");
        assert_eq!(line.trim_end().lines().count(), 1, "{req}: single line");
        serde_json::from_str(line.trim_end())
            .unwrap_or_else(|e| panic!("{req}: bad JSON {e}: {line}"))
    };

    // Unknown command and empty query: JSON errors, never dropped.
    let doc = send("FROB 1");
    assert_eq!(doc["error"], "expected QUERY/EXPLAIN/PING/STATS/STATS WINDOW/TOP/METRICS/QUIT");
    let doc = send("QUERY");
    assert_eq!(doc["error"], "empty query");

    // Request 1: all stopwords — the engine's empty-query path, which
    // must bypass the cache entirely (lookups stays 0 below).
    let doc = send("QUERY the of");
    assert_eq!(doc["answers"].as_array().map(<[serde_json::Value]>::len), Some(0), "{doc}");

    // Request 2: a real query, necessarily a cache miss.
    let first = send("QUERY xml sql");
    assert_eq!(first["answers"][0]["central"], "query language");

    let stats = send("STATS");
    assert_eq!(stats["served"], 2u64, "errors and STATS are not served requests");
    // Only the real query armed a session; the stopword-only one
    // short-circuits inside the engine.
    assert_eq!(stats["pool"]["queries_run"], 1u64);
    assert_eq!(stats["cache"]["lookups"], 1u64, "stopword query bypassed");
    assert_eq!(stats["cache"]["misses"], 1u64);
    assert_eq!(stats["cache"]["hits"], 0u64);
    assert_eq!(stats["cache"]["entries"], 1u64);

    // Request 3: a case-flipped reordering of request 2 — a cache hit.
    // Answers are identical; the echoed query string is its own.
    let repeat = send("QUERY SQL xml");
    assert_eq!(repeat["query"].as_str(), Some("SQL xml"));
    assert_eq!(repeat["answers"], first["answers"]);
    assert_eq!(repeat["unmatched"], first["unmatched"]);
    let stats = send("STATS");
    assert_eq!(stats["served"], 3u64);
    assert_eq!(stats["pool"]["queries_run"], 1u64, "hits never touch the pool");
    assert_eq!(stats["cache"]["hits"], 1u64);

    // Request 4: a stopword-padded variant — also a hit; reaching
    // --max-requests drains the server right after this response.
    let repeat = send("QUERY the xml of sql");
    assert_eq!(repeat["query"].as_str(), Some("the xml of sql"));
    assert_eq!(repeat["answers"], first["answers"]);

    let (code, log) = server.join().unwrap();
    assert_eq!(code, 0, "{log}");
    assert!(log.contains("served 4 queries"), "{log}");
    let _ = std::fs::remove_file(path);
}
