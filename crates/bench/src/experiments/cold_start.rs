//! Cold-start cost: time from "dataset on disk" to "first answer
//! served", memory-mapped snapshot vs in-RAM build, across engines.
//!
//! The zero-copy `.wsnap` path exists for exactly this number. A heap
//! server must parse the dataset, rebuild the inverted index and
//! re-sample the average distance before it can answer anything; a
//! snapshot server maps the file, validates one header page, and serves.
//! This experiment measures, per backend:
//!
//! * `open_ms` — constructing a ready `WikiSearch` from the on-disk
//!   artifact (`.bin` parse + index build + sampling for RAM; header
//!   validation only for mmap),
//! * `first_answer_ms` — open plus the first query (the mmap side pays
//!   its page faults here),
//! * `steady_qps` — throughput once warm, which must *not* differ
//!   between backings (same columns, same engines).
//!
//! The mmap point is measured twice: `mmap_cold` is the first open after
//! the snapshot is compiled (page cache as cold as an unprivileged
//! process can make it — the file is freshly written, read back through
//! the mapping for the first time), `mmap_warm` is a re-open with every
//! page resident. Writes `BENCH_coldstart.json`.

use crate::queries_per_point;
use datagen::synthetic::SyntheticConfig;
use datagen::QueryWorkload;
use eval::runner::ExperimentSink;
use eval::Table;
use serde_json::json;
use std::path::PathBuf;
use std::time::Instant;
use wikisearch_engine::{compile_snapshot, Backend, WikiSearch};

/// One measured mode under one backend.
struct Point {
    backend: &'static str,
    mode: &'static str,
    open_ms: f64,
    first_answer_ms: f64,
    steady_qps: f64,
}

/// The backend lineup (thread counts match the other service benches).
fn backends() -> Vec<(&'static str, Backend)> {
    vec![
        ("Seq", Backend::Sequential),
        ("Par-CPU", Backend::ParCpu(2)),
        ("GPU-style", Backend::GpuStyle(2)),
        ("Dyn-Par", Backend::DynPar(2)),
    ]
}

/// Open + first answer + steady-state throughput for one ready engine
/// constructor. `open` builds the engine; the measurement brackets it.
fn measure(open: impl FnOnce() -> WikiSearch, queries: &[String]) -> (f64, f64, f64, usize) {
    let t0 = Instant::now();
    let ws = open();
    let open_ms = t0.elapsed().as_secs_f64() * 1e3;
    let first = ws.search(&queries[0]);
    let first_answer_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mut answered = first.answers.len();
    let t1 = Instant::now();
    for q in queries {
        answered += ws.search(q).answers.len();
    }
    let steady_qps = queries.len() as f64 / t1.elapsed().as_secs_f64();
    (open_ms, first_answer_ms, steady_qps, answered)
}

/// Run the cold-start sweep.
pub fn run() -> serde_json::Value {
    let per_point = queries_per_point().max(20);
    println!("== cold_start: open-to-first-answer, mmap snapshot vs in-RAM build ==");

    let ds = SyntheticConfig::wiki2017_sim().generate();
    let name = ds.config.name.clone();
    let dir = std::env::temp_dir();
    let bin_path: PathBuf = dir.join(format!("ws-coldstart-{}.bin", std::process::id()));
    let snap_path: PathBuf = dir.join(format!("ws-coldstart-{}.wsnap", std::process::id()));
    kgraph::store::save_graph(&ds.graph, &bin_path).expect("write .bin");
    let t = Instant::now();
    let info = compile_snapshot(&ds.graph, &snap_path).expect("compile snapshot");
    let compile_ms = t.elapsed().as_secs_f64() * 1e3;
    println!(
        "   dataset {name}: {} nodes, {} edges | snapshot {} bytes compiled in {:.0} ms | {} queries/point",
        info.nodes, info.edges, info.file_bytes, compile_ms, per_point
    );

    let mut workload = QueryWorkload::new(777);
    let queries = workload.batch(2, per_point);

    let mut points: Vec<Point> = Vec::new();
    let mut sanity: Vec<usize> = Vec::new();
    for (bname, backend) in backends() {
        // In-RAM: parse the compact binary, rebuild everything.
        let (open_ms, first_ms, qps, answered) = measure(
            || {
                let g = kgraph::store::load_graph(&bin_path).expect(".bin").into_graph();
                WikiSearch::build_with(g, backend)
            },
            &queries,
        );
        points.push(Point {
            backend: bname,
            mode: "ram",
            open_ms,
            first_answer_ms: first_ms,
            steady_qps: qps,
        });
        sanity.push(answered);

        // Mmap, first touch after compile, then again fully resident.
        for mode in ["mmap_cold", "mmap_warm"] {
            let (open_ms, first_ms, qps, answered) = measure(
                || WikiSearch::open_snapshot(&snap_path, backend).expect("open snapshot"),
                &queries,
            );
            points.push(Point {
                backend: bname,
                mode,
                open_ms,
                first_answer_ms: first_ms,
                steady_qps: qps,
            });
            sanity.push(answered);
        }
    }
    // Every mode answered the identical stream: identical answer counts.
    assert!(
        sanity.windows(2).all(|w| w[0] == w[1]),
        "backings disagreed on answers: {sanity:?}"
    );

    let mut table = Table::new(vec!["backend", "mode", "open ms", "first answer ms", "steady qps"]);
    for p in &points {
        table.row(vec![
            p.backend.to_string(),
            p.mode.to_string(),
            format!("{:.2}", p.open_ms),
            format!("{:.2}", p.first_answer_ms),
            format!("{:.1}", p.steady_qps),
        ]);
    }
    table.print();

    let record = json!({
        "experiment": "cold_start",
        "dataset": name,
        "nodes": info.nodes,
        "edges": info.edges,
        "snapshot_bytes": info.file_bytes,
        "compile_ms": compile_ms,
        "queries_per_point": per_point,
        "points": points
            .iter()
            .map(|p| {
                json!({
                    "backend": p.backend,
                    "mode": p.mode,
                    "open_ms": p.open_ms,
                    "first_answer_ms": p.first_answer_ms,
                    "steady_qps": p.steady_qps,
                })
            })
            .collect::<Vec<_>>(),
    });
    if let Ok(path) = ExperimentSink::new().write("BENCH_coldstart", &record) {
        println!("record: {}", path.display());
    }
    let _ = std::fs::remove_file(bin_path);
    let _ = std::fs::remove_file(snap_path);
    record
}
