//! The coordinator side of the remote protocol: [`RemoteShardedSearch`]
//! drives `N` shard-worker processes through the same level-synchronous
//! round protocol the in-process [`crate::shard::ShardedSearch`] runs
//! over rayon lanes, behind the same `try_search` seam — so the result
//! cache, budgets, batching, tracing and the top-down extractor all run
//! unchanged above it, and the remote-equivalence differential suite can
//! pin the two byte-identical.
//!
//! ## Supervision
//!
//! Every worker interaction goes through three defensive layers:
//!
//! * **per-RPC deadlines** — each socket read/write is capped at
//!   [`RemoteOptions::rpc_timeout`], further clamped by the query's own
//!   wall-clock budget, so a stalled worker costs bounded time;
//! * **bounded whole-query retry** — a query whose shard RPC fails is
//!   retried from the top (the protocol is idempotent: `Start` re-arms
//!   every worker's state) with exponential backoff + deterministic
//!   jitter, up to [`RemoteOptions::attempts`] failures per shard, all
//!   charged against the *same* budget tracker: the budget bounds total
//!   work including recovery;
//! * **a per-shard circuit breaker** ([`super::breaker`]) fed only by
//!   *confirmed* worker failures: when a query RPC fails, the worker is
//!   probed out-of-band first, and a surviving probe attributes the
//!   failure to the query itself — a fault-injecting query can therefore
//!   never open the breaker and shed its well-behaved neighbours.
//!
//! ## Degradation
//!
//! When a shard stays unreachable past its retry budget the policy knob
//! [`RemoteOptions::degraded_answers`] decides: shed the query with a
//! structured [`SearchError::ShardUnavailable`] (default), or serve a
//! best-effort answer from the live shards with the explicit `degraded`
//! marker set ([`RemoteOutcome::degraded`]) — never silently wrong. A
//! degraded search skips the dead shards in every phase and lets the live
//! shards' halo replicas stand in for the dead owners' rows during
//! collection (replicas are exact by the round-boundary sync invariant;
//! only expansions that had to run *inside* the dead shard are lost).

use super::breaker::{BreakerState, CircuitBreaker};
use super::frame::write_frame;
use super::wire;
use super::worker::expect_frame;
use crate::activation::{ActivationConfig, ActivationMap};
use crate::bottom_up::{LevelTrace, TerminationReason};
use crate::budget::{BudgetTracker, QueryBudget};
use crate::engine::{SearchOutcome, SearchStats};
use crate::error::SearchError;
use crate::metrics::{HistogramSnapshot, LogHistogram};
use crate::model::{CentralGraph, INFINITE_LEVEL};
use crate::shard::{ShardBackend, DEFAULT_PARTITION_SEED};
use crate::state::HitLevels;
use crate::top_down;
use crate::trace::{PhaseMillis, QueryTrace, ShardSpan, ShardTimeline, TraceLevelRecord};
use crate::SearchParams;
use kgraph::{KnowledgeGraph, NodeId};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Address directory of the worker fleet. The coordinator re-reads it on
/// every dial, so a supervisor can move a respawned worker to a new port;
/// bumping [`ShardAddrs::generation`] invalidates pooled connections to
/// the old incarnation.
pub trait ShardAddrs: Send + Sync {
    /// Current address of `shard`'s worker, or `None` while it is down.
    fn addr(&self, shard: usize) -> Option<SocketAddr>;
    /// Incarnation counter of `shard`'s worker. Connections remember the
    /// generation they were dialed under and are discarded when it moves.
    fn generation(&self, _shard: usize) -> u64 {
        0
    }
}

/// A fixed address per shard — external workers that never move.
pub struct StaticAddrs(pub Vec<SocketAddr>);

impl ShardAddrs for StaticAddrs {
    fn addr(&self, shard: usize) -> Option<SocketAddr> {
        self.0.get(shard).copied()
    }
}

/// Supervision and degradation knobs of a [`RemoteShardedSearch`].
#[derive(Clone, Copy, Debug)]
pub struct RemoteOptions {
    /// Cap on each RPC's socket read/write (further clamped by the
    /// query's wall-clock budget).
    pub rpc_timeout: Duration,
    /// Cap on establishing a worker connection.
    pub connect_timeout: Duration,
    /// Confirmed failures per shard before a query gives up on it.
    pub attempts: u32,
    /// First retry backoff; doubles per failure.
    pub backoff_base: Duration,
    /// Upper bound on the backoff.
    pub backoff_cap: Duration,
    /// Consecutive confirmed failures that open the breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker sheds before admitting a probe.
    pub breaker_cooldown: Duration,
    /// Interval of the background health-probe thread; `None` disables
    /// it (deterministic tests drive probes through queries instead).
    pub heartbeat: Option<Duration>,
    /// `true`: serve best-effort answers from live shards (marked
    /// `degraded`); `false`: shed with `shard_unavailable`.
    pub degraded_answers: bool,
}

impl Default for RemoteOptions {
    fn default() -> Self {
        RemoteOptions {
            rpc_timeout: Duration::from_secs(5),
            connect_timeout: Duration::from_secs(1),
            attempts: 3,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_secs(1),
            heartbeat: Some(Duration::from_secs(1)),
            degraded_answers: false,
        }
    }
}

/// A successful remote search: the outcome plus the explicit degradation
/// marker the wire protocol surfaces.
#[derive(Debug)]
pub struct RemoteOutcome {
    /// The search outcome, byte-identical to the in-process sharded path
    /// when no shard was lost.
    pub outcome: SearchOutcome,
    /// `true` iff at least one shard was skipped — the answer is
    /// best-effort and explicitly marked so, never silently wrong.
    pub degraded: bool,
}

/// Monitoring snapshot of a [`RemoteShardedSearch`] (STATS `remote`
/// block).
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize)]
pub struct RemoteStats {
    /// Number of shards.
    pub shards: usize,
    /// RPCs issued (all kinds, including handshakes and probes).
    pub rpcs: u64,
    /// Worker dials (fresh connections, including respawn re-dials).
    pub dials: u64,
    /// Whole-query retries after a shard RPC failure.
    pub retries: u64,
    /// Out-of-band health probes sent (failure attribution + heartbeat).
    pub probes: u64,
    /// Probes that failed (confirmed worker failures).
    pub probe_failures: u64,
    /// Times a breaker transitioned to open.
    pub breaker_opens: u64,
    /// Queries answered degraded (at least one shard skipped).
    pub degraded_queries: u64,
    /// Expansion/exchange rounds executed across all queries.
    pub rounds: u64,
    /// Unique boundary notifications broadcast across all queries.
    pub notifications: u64,
    /// Boundary notifications suppressed by the monotone-bound dedup.
    pub notifications_suppressed: u64,
    /// Current breaker state per shard (`closed` / `open` / `half_open`).
    pub breaker: Vec<String>,
    /// RPC latency distribution, microseconds.
    pub rpc_latency_us: HistogramSnapshot,
}

#[derive(Default)]
struct RemoteCounters {
    rpcs: AtomicU64,
    dials: AtomicU64,
    retries: AtomicU64,
    probes: AtomicU64,
    probe_failures: AtomicU64,
    breaker_opens: AtomicU64,
    degraded_queries: AtomicU64,
    rounds: AtomicU64,
    notifications: AtomicU64,
    suppressed: AtomicU64,
    /// Nonce of the deterministic backoff jitter.
    jitter_nonce: AtomicU64,
}

/// State shared with the heartbeat thread.
struct Core {
    shards: usize,
    seed: u64,
    num_nodes: u64,
    addrs: Arc<dyn ShardAddrs>,
    opts: RemoteOptions,
    breakers: Vec<CircuitBreaker>,
    counters: RemoteCounters,
    latency: LogHistogram,
}

/// One pooled worker connection, tagged with the address generation it
/// was dialed under.
struct Channel {
    stream: TcpStream,
    generation: u64,
}

impl Core {
    /// The handshake this fleet must agree to, at a given protocol
    /// revision.
    fn hello(&self, shard: usize, version: u32) -> wire::Hello {
        wire::Hello {
            version,
            shards: self.shards as u32,
            shard_index: shard as u32,
            num_nodes: self.num_nodes,
            seed: self.seed,
        }
    }

    /// One RPC on an established channel: write the request frame, read
    /// the reply, map worker error frames and wrong opcodes to
    /// `InvalidData`.
    fn call(
        &self,
        chan: &mut Channel,
        op: u8,
        payload: &[u8],
        expect: u8,
        timeout: Duration,
    ) -> io::Result<Vec<u8>> {
        chan.stream.set_read_timeout(Some(timeout))?;
        chan.stream.set_write_timeout(Some(timeout))?;
        let t = Instant::now();
        write_frame(&mut chan.stream, op, payload)?;
        let (got, body) = expect_frame(&mut chan.stream)?;
        self.counters.rpcs.fetch_add(1, Ordering::Relaxed);
        self.latency.record(t.elapsed().as_micros() as u64);
        if got == wire::OP_ERROR {
            let e: wire::WireError = wire::decode(&body)
                .unwrap_or(wire::WireError { code: "undecodable".into(), message: String::new() });
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("worker error {}: {}", e.code, e.message),
            ));
        }
        if got != expect {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected opcode {expect}, worker sent {got}"),
            ));
        }
        Ok(body)
    }

    /// Dial + handshake a fresh channel to `shard`, negotiating the
    /// protocol revision downward when the fleet is older than this
    /// coordinator: dial at [`wire::PROTOCOL_VERSION`] first and — only
    /// on a handshake rejection — redial once at
    /// [`wire::MIN_PROTOCOL_VERSION`]. A v1 worker did full-struct
    /// `Hello` equality (version included), so the fallback is what lets
    /// a v2 coordinator drive it; the degradation is implicit in the
    /// wire schema (a v1 worker simply never echoes qids or ships
    /// spans, both optional fields).
    fn dial(&self, shard: usize) -> io::Result<Channel> {
        match self.dial_at(shard, wire::PROTOCOL_VERSION) {
            Err(e)
                if wire::MIN_PROTOCOL_VERSION < wire::PROTOCOL_VERSION
                    && e.kind() == io::ErrorKind::InvalidData
                    && e.to_string().starts_with("worker error bad_handshake") =>
            {
                self.dial_at(shard, wire::MIN_PROTOCOL_VERSION)
            }
            other => other,
        }
    }

    fn dial_at(&self, shard: usize, version: u32) -> io::Result<Channel> {
        let addr = self.addrs.addr(shard).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("no address for shard {shard}"))
        })?;
        let generation = self.addrs.generation(shard);
        let stream = TcpStream::connect_timeout(&addr, self.opts.connect_timeout)?;
        let _ = stream.set_nodelay(true);
        self.counters.dials.fetch_add(1, Ordering::Relaxed);
        let mut chan = Channel { stream, generation };
        let body = self.call(
            &mut chan,
            wire::OP_HELLO,
            &wire::encode(&self.hello(shard, version)),
            wire::OP_HELLO_OK,
            self.opts.rpc_timeout,
        )?;
        let ok: wire::HelloOk =
            wire::decode(&body).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        if ok.shard_index != shard as u32 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("dialed shard {shard}, worker claims {}", ok.shard_index),
            ));
        }
        Ok(chan)
    }

    /// Out-of-band health probe: fresh dial + ping. Returns the probed
    /// channel on success so it can be pooled.
    fn probe(&self, shard: usize) -> Option<Channel> {
        self.counters.probes.fetch_add(1, Ordering::Relaxed);
        let attempt = || -> io::Result<Channel> {
            let mut chan = self.dial(shard)?;
            self.call(&mut chan, wire::OP_PING, &[], wire::OP_PONG, self.opts.rpc_timeout)?;
            Ok(chan)
        };
        match attempt() {
            Ok(chan) => Some(chan),
            Err(_) => {
                self.counters.probe_failures.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Record a confirmed worker failure on the breaker, counting
    /// open transitions.
    fn confirmed_failure(&self, shard: usize) {
        let was_open = self.breakers[shard].state() == BreakerState::Open;
        self.breakers[shard].record_failure(self.opts.breaker_threshold);
        if !was_open && self.breakers[shard].state() == BreakerState::Open {
            self.counters.breaker_opens.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Deterministic backoff jitter in `[0, base)` — splitmix64 over a
    /// process-local nonce, no RNG dependency.
    fn jitter(&self, base: Duration) -> Duration {
        let nonce = self.counters.jitter_nonce.fetch_add(1, Ordering::Relaxed);
        let mut x = nonce.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        base.mul_f64((x % 1000) as f64 / 2000.0) // 0 – 50 % of base
    }
}

/// Coordinator for a fleet of remote shard workers; the remote
/// counterpart of [`crate::shard::ShardedSearch`], exposing the same
/// `try_search` contract plus the degradation marker.
pub struct RemoteShardedSearch {
    core: Arc<Core>,
    backend: ShardBackend,
    name: String,
    /// Per-shard connection freelist.
    channels: Vec<Mutex<Vec<Channel>>>,
    heartbeat_stop: Arc<AtomicBool>,
    heartbeat: Option<std::thread::JoinHandle<()>>,
}

/// Why one query attempt stopped.
enum AttemptError {
    /// The query's own budget tripped: surfaces directly.
    Budget(SearchError),
    /// A shard RPC failed: retry / degrade / shed.
    ShardIo { shard: usize },
    /// A shard's breaker refused admission: degrade / shed, no probe.
    ShardShed { shard: usize },
}

impl RemoteShardedSearch {
    /// Build a coordinator for an `N = shards` fleet addressed by
    /// `addrs`, partitioned from `graph` under the default seed (the
    /// workers must be built from the same graph, shard count and seed;
    /// the handshake enforces it).
    pub fn new(
        graph: &KnowledgeGraph,
        backend: ShardBackend,
        shards: usize,
        addrs: Arc<dyn ShardAddrs>,
        opts: RemoteOptions,
    ) -> RemoteShardedSearch {
        assert!(shards >= 1, "remote sharded search needs at least one shard");
        let core = Arc::new(Core {
            shards,
            seed: DEFAULT_PARTITION_SEED,
            num_nodes: graph.num_nodes() as u64,
            addrs,
            opts,
            breakers: (0..shards).map(|_| CircuitBreaker::new()).collect(),
            counters: RemoteCounters::default(),
            latency: LogHistogram::new(),
        });
        let name = format!("{}[shards={shards}]", backend.base_name());
        let heartbeat_stop = Arc::new(AtomicBool::new(false));
        let heartbeat = opts.heartbeat.map(|interval| {
            let core = Arc::clone(&core);
            let stop = Arc::clone(&heartbeat_stop);
            std::thread::Builder::new()
                .name("remote-shard-heartbeat".into())
                .spawn(move || heartbeat_loop(&core, &stop, interval))
                .expect("spawning the heartbeat thread")
        });
        RemoteShardedSearch {
            core,
            backend,
            name,
            channels: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
            heartbeat_stop,
            heartbeat,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.core.shards
    }

    /// Engine display name carried on traces (`"CPU-Par[shards=4]"` —
    /// identical to the in-process sharded name, as the byte-identity
    /// contract requires).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Monitoring snapshot.
    pub fn stats(&self) -> RemoteStats {
        let c = &self.core.counters;
        RemoteStats {
            shards: self.core.shards,
            rpcs: c.rpcs.load(Ordering::Relaxed),
            dials: c.dials.load(Ordering::Relaxed),
            retries: c.retries.load(Ordering::Relaxed),
            probes: c.probes.load(Ordering::Relaxed),
            probe_failures: c.probe_failures.load(Ordering::Relaxed),
            breaker_opens: c.breaker_opens.load(Ordering::Relaxed),
            degraded_queries: c.degraded_queries.load(Ordering::Relaxed),
            rounds: c.rounds.load(Ordering::Relaxed),
            notifications: c.notifications.load(Ordering::Relaxed),
            notifications_suppressed: c.suppressed.load(Ordering::Relaxed),
            breaker: self.core.breakers.iter().map(|b| b.state().name().to_string()).collect(),
            rpc_latency_us: self.core.latency.snapshot(),
        }
    }

    /// Current breaker state per shard.
    pub fn breaker_states(&self) -> Vec<BreakerState> {
        self.core.breakers.iter().map(|b| b.state()).collect()
    }

    /// Run one budgeted remote search. Same contract as
    /// [`crate::shard::ShardedSearch::try_search`], plus the explicit
    /// [`RemoteOutcome::degraded`] marker.
    ///
    /// # Panics
    /// Panics if `params` fail [`SearchParams::validate`].
    pub fn try_search(
        &self,
        graph: &KnowledgeGraph,
        query: &textindex::ParsedQuery,
        params: &SearchParams,
        budget: &QueryBudget,
    ) -> Result<RemoteOutcome, SearchError> {
        self.try_search_tagged(graph, query, params, budget, None)
    }

    /// [`Self::try_search`] tagged with a fleet-wide query ID: the qid
    /// rides every `Start` frame, is echoed back on `CollectOk`, and is
    /// stamped on the trace and its stitched shard timelines so
    /// worker-side observations join with the coordinator's.
    pub fn try_search_tagged(
        &self,
        graph: &KnowledgeGraph,
        query: &textindex::ParsedQuery,
        params: &SearchParams,
        budget: &QueryBudget,
        qid: Option<u64>,
    ) -> Result<RemoteOutcome, SearchError> {
        if let Err(e) = params.validate() {
            panic!("invalid search parameters: {e}");
        }
        let tracker = if params.trace.enabled() {
            budget.start_counting()
        } else {
            budget.start()
        };
        tracker.checkpoint()?;
        #[cfg(feature = "fault-inject")]
        crate::fault::inject(query, &tracker)?;
        if query.is_empty() {
            let mut out = SearchOutcome::default();
            if params.trace.enabled() {
                out.trace = Some(Box::new(QueryTrace {
                    engine: self.name.clone(),
                    qid,
                    ..QueryTrace::default()
                }));
            }
            return Ok(RemoteOutcome { outcome: out, degraded: false });
        }

        let opts = &self.core.opts;
        let deadline = budget.timeout.map(|t| Instant::now() + t);
        let mut dead = vec![false; self.core.shards];
        let mut failures = vec![0u32; self.core.shards];
        // Bounded supervision loop: every iteration either returns,
        // burns one of a shard's finite attempts, or marks a shard dead.
        let max_rounds = (self.core.shards as u32 * (opts.attempts + 1) + 1) as usize;
        for _ in 0..max_rounds {
            match self.attempt(graph, query, params, &tracker, deadline, &dead, qid) {
                Ok(outcome) => {
                    let degraded = dead.iter().any(|&d| d);
                    if degraded {
                        self.core.counters.degraded_queries.fetch_add(1, Ordering::Relaxed);
                    }
                    for (s, b) in self.core.breakers.iter().enumerate() {
                        if !dead[s] {
                            b.record_success();
                        }
                    }
                    return Ok(RemoteOutcome { outcome, degraded });
                }
                Err(AttemptError::Budget(e)) => return Err(e),
                Err(AttemptError::ShardShed { shard }) => {
                    // The breaker is shedding this shard: confirmed-dead
                    // already, no probe needed.
                    if !opts.degraded_answers {
                        return Err(SearchError::ShardUnavailable { shard });
                    }
                    dead[shard] = true;
                }
                Err(AttemptError::ShardIo { shard }) => {
                    // The query's own budget may be the real cause (an
                    // RPC clamped by the wall-clock deadline): first
                    // cause wins, exactly like the in-process path.
                    tracker.poll_deadline();
                    if let Some(e) = tracker.error() {
                        return Err(e);
                    }
                    failures[shard] += 1;
                    // Failure attribution: probe the worker out-of-band.
                    // A surviving probe blames the query (e.g. a fault
                    // token), leaving the breaker untouched.
                    match self.core.probe(shard) {
                        Some(chan) => self.checkin(shard, chan),
                        None => self.core.confirmed_failure(shard),
                    }
                    let gone = failures[shard] >= opts.attempts
                        || self.core.breakers[shard].state() == BreakerState::Open;
                    if gone {
                        if !opts.degraded_answers {
                            return Err(SearchError::ShardUnavailable { shard });
                        }
                        dead[shard] = true;
                        continue;
                    }
                    self.core.counters.retries.fetch_add(1, Ordering::Relaxed);
                    let exp = opts
                        .backoff_base
                        .saturating_mul(1u32 << (failures[shard] - 1).min(16))
                        .min(opts.backoff_cap);
                    std::thread::sleep(exp + self.core.jitter(exp));
                }
            }
        }
        // Unreachable with finite attempts; report the first live shard.
        Err(SearchError::ShardUnavailable { shard: dead.iter().position(|&d| !d).unwrap_or(0) })
    }

    /// Pooled-connection checkout: reuse a same-generation channel or
    /// dial a fresh one.
    fn checkout(&self, shard: usize) -> io::Result<Channel> {
        let current = self.core.addrs.generation(shard);
        while let Some(chan) = self.channels[shard].lock().unwrap().pop() {
            if chan.generation == current {
                return Ok(chan);
            }
            // Stale incarnation: drop and keep looking.
        }
        self.core.dial(shard)
    }

    fn checkin(&self, shard: usize, chan: Channel) {
        if chan.generation == self.core.addrs.generation(shard) {
            self.channels[shard].lock().unwrap().push(chan);
        }
    }

    /// Per-RPC socket timeout: the configured cap, clamped by what is
    /// left of the query's wall-clock budget.
    fn rpc_timeout(&self, deadline: Option<Instant>) -> Duration {
        let cap = self.core.opts.rpc_timeout;
        match deadline {
            Some(d) => {
                let left = d.saturating_duration_since(Instant::now());
                cap.min(left).max(Duration::from_millis(1))
            }
            None => cap,
        }
    }

    /// One full pass of the round protocol over the live shards.
    #[allow(clippy::too_many_lines, clippy::too_many_arguments)]
    fn attempt(
        &self,
        graph: &KnowledgeGraph,
        query: &textindex::ParsedQuery,
        params: &SearchParams,
        tracker: &BudgetTracker,
        deadline: Option<Instant>,
        dead: &[bool],
        qid: Option<u64>,
    ) -> Result<SearchOutcome, AttemptError> {
        let core = &self.core;
        let live: Vec<usize> = (0..core.shards).filter(|&s| !dead[s]).collect();
        // Admission: an open breaker sheds the shard before any dialing.
        for &s in &live {
            if !core.breakers[s].allow(core.opts.breaker_cooldown) {
                return Err(AttemptError::ShardShed { shard: s });
            }
        }
        let mut profile = crate::profile::PhaseProfile::default();
        let q = query.num_keywords();
        let traced = params.trace.enabled();

        // Checkout one exclusive channel per live shard. On any failure
        // the erroring channel is dropped (it may hold undrained reply
        // bytes); the healthy ones go back to the pool.
        let mut chans: Vec<Option<Channel>> = (0..core.shards).map(|_| None).collect();
        let mut fail: Option<usize> = None;
        for &s in &live {
            match self.checkout(s) {
                Ok(c) => chans[s] = Some(c),
                Err(_) => {
                    fail = Some(s);
                    break;
                }
            }
        }
        let finish = |chans: Vec<Option<Channel>>| {
            for (s, c) in chans.into_iter().enumerate() {
                if let Some(c) = c {
                    self.checkin(s, c);
                }
            }
        };
        if let Some(shard) = fail {
            finish(chans);
            return Err(AttemptError::ShardIo { shard });
        }

        // Per-shard RPC accounting for this attempt: every successful
        // RPC's coordinator-observed wall time, by shard. This is the
        // outer envelope the stitched timelines reconcile worker spans
        // against (worker intervals nest inside it, so
        // `rpc_us >= worker_us` and the difference is wire time).
        let mut shard_rpcs = vec![0u64; core.shards];
        let mut shard_rpc_us = vec![0u64; core.shards];

        // The per-shard RPC helper for this attempt. On failure the
        // erroring channel is dropped (it may hold undrained reply
        // bytes); the healthy ones go back to the pool.
        macro_rules! rpc {
            ($s:expr, $op:expr, $payload:expr, $expect:expr) => {{
                let chan = chans[$s].as_mut().expect("live shard has a channel");
                let t_rpc = Instant::now();
                match core.call(chan, $op, $payload, $expect, self.rpc_timeout(deadline)) {
                    Ok(body) => {
                        shard_rpcs[$s] += 1;
                        shard_rpc_us[$s] += t_rpc.elapsed().as_micros() as u64;
                        body
                    }
                    Err(_) => {
                        chans[$s] = None; // poisoned: drop it
                        finish(chans);
                        return Err(AttemptError::ShardIo { shard: $s });
                    }
                }
            }};
        }
        macro_rules! budget_check {
            ($e:expr) => {
                match $e {
                    Ok(v) => v,
                    Err(err) => {
                        finish(chans);
                        return Err(AttemptError::Budget(err));
                    }
                }
            };
        }
        // Decode helper: a malformed reply is a shard failure.
        macro_rules! decode {
            ($s:expr, $body:expr) => {
                match wire::decode(&$body) {
                    Ok(v) => v,
                    Err(_) => {
                        chans[$s] = None; // protocol corruption: drop it
                        finish(chans);
                        return Err(AttemptError::ShardIo { shard: $s });
                    }
                }
            };
        }

        // Scatter: Start re-arms every live worker's state for this
        // query (idempotent across retries).
        let t = Instant::now();
        let start = wire::Start {
            query: wire::WireQuery::from_query(query),
            params: params.clone(),
            activation: params.explicit_activation.as_deref().cloned(),
            backend: self.backend.base_name().to_string(),
            threads: self.backend.threads() as u32,
            qid,
            // v1 workers ignore both fields (unknown keys are skipped);
            // span-less replies degrade the stitched timeline, never the
            // answer.
            spans: Some(traced),
        };
        let start_payload = wire::encode(&start);
        for &s in &live {
            let body = rpc!(s, wire::OP_START, &start_payload, wire::OP_START_OK);
            let ok: wire::StartOk = decode!(s, body);
            debug_assert_eq!(ok.keywords as usize, q);
        }
        profile.init = t.elapsed();

        // The level-synchronous round loop — the in-process fork-join
        // phases, each fork replaced by a sweep of shard RPCs.
        let max_level = params.max_level.min(254);
        let mut cohort: Vec<(NodeId, u8)> = Vec::new();
        let mut level_trace: Vec<LevelTrace> = Vec::new();
        let mut records: Option<Vec<TraceLevelRecord>> = traced.then(Vec::new);
        let mut peak_frontier = 0usize;
        let mut level: u8 = 0;
        let terminated = loop {
            budget_check!(tracker.checkpoint());
            let t = Instant::now();
            let mut frontier_total = 0usize;
            for &s in &live {
                let body = rpc!(s, wire::OP_ENQUEUE, &[], wire::OP_ENQUEUE_OK);
                let ok: wire::EnqueueOk = decode!(s, body);
                frontier_total += ok.frontier as usize;
            }
            profile.enqueue += t.elapsed();
            peak_frontier = peak_frontier.max(frontier_total);
            if frontier_total == 0 {
                break TerminationReason::FrontierExhausted;
            }

            let t = Instant::now();
            let identify = wire::encode(&wire::Identify { level, traced });
            let mut newly: Vec<u32> = Vec::new();
            let (mut new_hits, mut deferred) = (0usize, 0usize);
            for &s in &live {
                let body = rpc!(s, wire::OP_IDENTIFY, &identify, wire::OP_IDENTIFY_OK);
                let ok: wire::IdentifyOk = decode!(s, body);
                newly.extend_from_slice(&ok.newly);
                new_hits += ok.new_hits as usize;
                deferred += ok.deferred as usize;
            }
            newly.sort_unstable();
            profile.identify += t.elapsed();
            level_trace.push(LevelTrace {
                level,
                frontier: frontier_total,
                identified: newly.len(),
            });
            if let Some(recs) = records.as_mut() {
                recs.push(TraceLevelRecord {
                    level: u32::from(level),
                    frontier: frontier_total,
                    identified: newly.len(),
                    new_hits,
                    activation_deferred: deferred,
                    expansions: 0, // filled in after this level's expansion
                    budget_remaining: tracker.remaining(),
                });
            }
            cohort.extend(newly.iter().map(|&v| (NodeId(v), level)));
            if cohort.len() >= params.top_k {
                break TerminationReason::EnoughCentralNodes;
            }
            if level >= max_level {
                break TerminationReason::LevelCap;
            }

            let charged_before = if records.is_some() {
                tracker.expansions()
            } else {
                0
            };
            let t = Instant::now();
            let expand = wire::encode(&wire::Expand { level });
            let mut pairs: Vec<(u32, u32)> = Vec::new();
            let mut charged_total = 0u64;
            for &s in &live {
                let body = rpc!(s, wire::OP_EXPAND, &expand, wire::OP_EXPAND_OK);
                let ok: wire::ExpandOk = decode!(s, body);
                pairs.extend_from_slice(&ok.outbox);
                charged_total += ok.charged;
            }
            // The workers metered this level's kernels; charge the sum
            // here — the same cumulative totals, at the same sequence
            // point, as the in-process driver.
            tracker.charge(charged_total);
            let sent = pairs.len();
            pairs.sort_unstable();
            pairs.dedup();
            core.counters.rounds.fetch_add(1, Ordering::Relaxed);
            core.counters.notifications.fetch_add(pairs.len() as u64, Ordering::Relaxed);
            core.counters
                .suppressed
                .fetch_add((sent - pairs.len()) as u64, Ordering::Relaxed);
            let apply = wire::encode(&wire::Apply { level, pairs });
            for &s in &live {
                let _body = rpc!(s, wire::OP_APPLY, &apply, wire::OP_APPLY_OK);
            }
            profile.expansion += t.elapsed();
            if let Some(last) = records.as_mut().and_then(|r| r.last_mut()) {
                last.expansions = tracker.expansions() - charged_before;
                last.budget_remaining = tracker.remaining();
            }
            level += 1;
        };
        let last_level = level;

        // Collect: ship every informative row and run the unchanged
        // top-down stage over the global graph. Owner rows are
        // authoritative; under degradation the live shards' halo
        // replicas stand in for dead owners.
        let include_halos = live.len() < core.shards;
        let collect = wire::encode(&wire::Collect { include_halos });
        // Owner rows are authoritative (only the owner's replica carries
        // `central_depth`); halo replicas — shipped only when degraded —
        // fill the gaps a dead owner left. The wire does not distinguish
        // the two, so replay the ownership hash per row.
        let owner_of = |v: u32| -> usize {
            (crate::shard::splitmix64(core.seed ^ u64::from(v)) % core.shards as u64) as usize
        };
        let mut rows: HashMap<u32, wire::WireRow> = HashMap::new();
        let mut halo_rows: Vec<wire::WireRow> = Vec::new();
        // Stitch worker-reported spans into per-shard timelines. All
        // quantities are monotonic durations measured on one host each —
        // the coordinator's clock for `rpc_us`, the worker's for the
        // span phases — never cross-host timestamp comparisons.
        let mut timelines: Option<Vec<ShardTimeline>> = traced.then(Vec::new);
        for &s in &live {
            let body = rpc!(s, wire::OP_COLLECT, &collect, wire::OP_COLLECT_OK);
            let ok: wire::CollectOk = decode!(s, body);
            let wire::CollectOk { rows: shard_rows, qid: shard_qid, spans } = ok;
            if let Some(tls) = timelines.as_mut() {
                // A span-less reply (v1 worker) still earns a timeline:
                // the RPC envelope is coordinator-side truth; only the
                // worker-side breakdown is missing.
                let spans = spans.unwrap_or_default();
                let worker_us: u64 = spans.iter().map(ShardSpan::worker_us).sum();
                let rpc_us = shard_rpc_us[s];
                tls.push(ShardTimeline {
                    shard: s,
                    qid: shard_qid,
                    rpcs: shard_rpcs[s],
                    rpc_us,
                    worker_us,
                    wire_us: rpc_us.saturating_sub(worker_us),
                    spans,
                });
            }
            for row in shard_rows {
                if owner_of(row.node) == s {
                    rows.insert(row.node, row);
                } else {
                    halo_rows.push(row);
                }
            }
        }
        finish(chans);
        for row in halo_rows {
            rows.entry(row.node).or_insert(row);
        }

        cohort.truncate(params.max_candidates);
        let config =
            ActivationConfig { alpha: params.alpha, average_distance: params.average_distance };
        let global_act = match &params.explicit_activation {
            Some(levels) => ActivationMap::Explicit(levels),
            None => ActivationMap::Computed { graph, config },
        };
        let hits = RemoteHitLevels { rows, q };
        let t = Instant::now();
        let mut candidates: Vec<CentralGraph> = Vec::with_capacity(cohort.len());
        for &(c, d) in &cohort {
            if tracker.should_stop() {
                let err =
                    tracker.error().expect("a stopped top-down stage implies a tripped budget");
                return Err(AttemptError::Budget(err));
            }
            let e = top_down::extract(graph, &global_act, &hits, c.0, d);
            candidates.push(top_down::prune_and_score(graph, &hits, &e, params));
        }
        let answers = top_down::select_top_k(candidates, params);
        profile.top_down = t.elapsed();

        let trace = records.take().map(|levels| {
            Box::new(QueryTrace {
                engine: self.name.clone(),
                keywords: q,
                total_expansions: tracker.expansions(),
                terminated: terminated == TerminationReason::LevelCap,
                levels,
                cache: None,
                session_id: None,
                session_queries: None,
                batch_id: None,
                co_batched: None,
                phase_ms: PhaseMillis::from(&profile),
                qid,
                cache_source_qid: None,
                shard_timelines: timelines,
            })
        });
        Ok(SearchOutcome {
            answers,
            profile,
            stats: SearchStats {
                last_level,
                central_candidates: cohort.len(),
                peak_frontier,
                trace: level_trace,
            },
            trace,
        })
    }
}

impl Drop for RemoteShardedSearch {
    fn drop(&mut self) {
        self.heartbeat_stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.heartbeat.take() {
            let _ = h.join();
        }
    }
}

/// Background health probing: keeps breaker states honest between
/// queries and closes the loop after a worker respawn (the cooldown-
/// elapsed probe is what re-closes an open breaker).
fn heartbeat_loop(core: &Core, stop: &AtomicBool, interval: Duration) {
    let tick = Duration::from_millis(20).min(interval);
    let mut last: Option<Instant> = None; // first probe fires immediately
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        if last.is_none_or(|t| t.elapsed() >= interval) {
            last = Some(Instant::now());
            for s in 0..core.shards {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                if !core.breakers[s].allow(core.opts.breaker_cooldown) {
                    continue; // open and cooling down: shed
                }
                match core.probe(s) {
                    Some(_chan) => core.breakers[s].record_success(),
                    None => core.confirmed_failure(s),
                }
            }
        }
        std::thread::sleep(tick);
    }
}

/// Routes top-down reads to the collected worker rows; untouched nodes
/// default to "never hit", exactly like a fresh in-process state row.
struct RemoteHitLevels {
    rows: HashMap<u32, wire::WireRow>,
    q: usize,
}

impl HitLevels for RemoteHitLevels {
    fn num_keywords(&self) -> usize {
        self.q
    }
    fn hit(&self, v: u32, i: usize) -> u8 {
        self.rows.get(&v).map_or(INFINITE_LEVEL, |r| r.hits[i])
    }
    fn is_keyword_node(&self, v: u32) -> bool {
        self.rows.get(&v).is_some_and(|r| r.keyword)
    }
    fn central_depth(&self, v: u32) -> Option<u8> {
        self.rows.get(&v).and_then(|r| r.central)
    }
}
