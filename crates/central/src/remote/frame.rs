//! Length-prefixed binary framing for the shard-worker wire protocol.
//!
//! Every message on a worker connection is one frame:
//!
//! ```text
//! ┌────────────┬─────────┬──────────────────────┐
//! │ len: u32 LE│ op: u8  │ payload: len bytes   │
//! └────────────┴─────────┴──────────────────────┘
//! ```
//!
//! `len` counts the payload only (the 5-byte header is fixed), and is
//! hard-capped at [`MAX_FRAME`]: a peer-supplied length can never make
//! the decoder allocate more than the cap, no matter what bytes arrive.
//! Payloads are JSON documents (see [`super::wire`]) — self-describing,
//! diffable in a packet capture, and served by the vendored serde shim.
//!
//! The decoder has two faces:
//!
//! * [`read_frame`] / [`write_frame`] — the blocking I/O path the worker
//!   and coordinator actually run, built on `read_exact`;
//! * [`FrameDecoder`] — an incremental push-parser over arbitrary byte
//!   chunks, the target of the frame-robustness property suite: any byte
//!   stream either yields well-formed frames or exactly one structured
//!   [`FrameError`], never a panic and never an over-allocation.

use std::io::{self, Read, Write};

/// Hard cap on a frame payload: 16 MiB. A decoder never allocates more
/// than this on behalf of a peer-supplied length.
pub const MAX_FRAME: usize = 16 << 20;

/// Fixed frame header size: 4-byte little-endian length + 1-byte opcode.
pub const HEADER_LEN: usize = 5;

/// A structured framing failure. Fatal for the connection that produced
/// it: binary frames carry no resync point, so the peer replies with one
/// error frame (when it still can) and closes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The header declared a payload larger than [`MAX_FRAME`].
    Oversized {
        /// The declared payload length.
        len: u64,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized { len } => {
                write!(f, "frame payload of {len} bytes exceeds the {MAX_FRAME} byte cap")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<FrameError> for io::Error {
    fn from(e: FrameError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e.to_string())
    }
}

/// Write one frame. `payload.len()` must not exceed [`MAX_FRAME`]
/// (internal callers never produce an oversized frame; this guards
/// against bugs, not peers).
pub fn write_frame(w: &mut impl Write, opcode: u8, payload: &[u8]) -> io::Result<()> {
    assert!(payload.len() <= MAX_FRAME, "refusing to write an oversized frame");
    let mut hdr = [0u8; HEADER_LEN];
    hdr[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    hdr[4] = opcode;
    w.write_all(&hdr)?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame. Returns `Ok(None)` on a clean EOF at a frame
/// boundary; EOF mid-frame and an over-cap length are errors.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<(u8, Vec<u8>)>> {
    let mut hdr = [0u8; HEADER_LEN];
    let mut filled = 0;
    while filled < HEADER_LEN {
        let n = r.read(&mut hdr[filled..])?;
        if n == 0 {
            return if filled == 0 {
                Ok(None)
            } else {
                Err(io::Error::new(io::ErrorKind::UnexpectedEof, "EOF mid frame header"))
            };
        }
        filled += n;
    }
    let len = u32::from_le_bytes(hdr[..4].try_into().unwrap()) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::Oversized { len: len as u64 }.into());
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some((hdr[4], payload)))
}

/// Incremental frame decoder over arbitrary byte chunks.
///
/// Feed bytes with [`FrameDecoder::push`], drain complete frames with
/// [`FrameDecoder::next_frame`]. A declared length over [`MAX_FRAME`]
/// surfaces as exactly one [`FrameError`] and poisons the decoder (every
/// later call returns the same error — the connection is dead); the
/// decoder's own buffering never exceeds the cap plus one header.
#[derive(Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    poisoned: Option<FrameError>,
}

impl FrameDecoder {
    /// A fresh decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffer a chunk of received bytes.
    pub fn push(&mut self, chunk: &[u8]) {
        if self.poisoned.is_none() {
            self.buf.extend_from_slice(chunk);
        }
    }

    /// The next complete frame, if the buffer holds one.
    ///
    /// `Ok(None)` means "need more bytes". An over-cap header yields
    /// `Err` now and forever (the decoder is poisoned).
    pub fn next_frame(&mut self) -> Result<Option<(u8, Vec<u8>)>, FrameError> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[..4].try_into().unwrap()) as usize;
        if len > MAX_FRAME {
            let e = FrameError::Oversized { len: len as u64 };
            self.buf = Vec::new(); // drop the buffer: the stream is dead
            self.poisoned = Some(e.clone());
            return Err(e);
        }
        if self.buf.len() < HEADER_LEN + len {
            return Ok(None);
        }
        let opcode = self.buf[4];
        let payload = self.buf[HEADER_LEN..HEADER_LEN + len].to_vec();
        self.buf.drain(..HEADER_LEN + len);
        Ok(Some((opcode, payload)))
    }

    /// Bytes currently buffered (bounded by [`MAX_FRAME`] + header + the
    /// last pushed chunk; the robustness suite asserts the bound).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_over_a_cursor() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 7, b"hello").unwrap();
        write_frame(&mut wire, 9, b"").unwrap();
        let mut r = io::Cursor::new(wire);
        assert_eq!(read_frame(&mut r).unwrap(), Some((7, b"hello".to_vec())));
        assert_eq!(read_frame(&mut r).unwrap(), Some((9, Vec::new())));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF at a boundary");
    }

    #[test]
    fn oversized_header_is_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        wire.push(1);
        let err = read_frame(&mut io::Cursor::new(wire)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn eof_mid_frame_is_an_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 7, b"hello").unwrap();
        wire.truncate(wire.len() - 2);
        let err = read_frame(&mut io::Cursor::new(wire)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn decoder_reassembles_across_arbitrary_chunking() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 3, b"abc").unwrap();
        write_frame(&mut wire, 4, b"defg").unwrap();
        for chunk in [1usize, 2, 3, wire.len()] {
            let mut d = FrameDecoder::new();
            let mut got = Vec::new();
            for piece in wire.chunks(chunk) {
                d.push(piece);
                while let Some(f) = d.next_frame().unwrap() {
                    got.push(f);
                }
            }
            assert_eq!(got, vec![(3, b"abc".to_vec()), (4, b"defg".to_vec())], "chunk {chunk}");
        }
    }

    #[test]
    fn decoder_poisons_on_oversized_and_stays_poisoned() {
        let mut d = FrameDecoder::new();
        d.push(&(MAX_FRAME as u32 + 1).to_le_bytes());
        d.push(&[0]);
        let e = d.next_frame().unwrap_err();
        assert!(matches!(e, FrameError::Oversized { .. }));
        d.push(b"more bytes");
        assert_eq!(d.next_frame().unwrap_err(), e, "poisoned decoders repeat the error");
        assert_eq!(d.buffered(), 0, "poisoning drops the buffer");
    }
}
