//! Harness plumbing shared by the per-table/figure benchmark binaries:
//! aligned table printing and JSON experiment records.

use serde::Serialize;
use std::fs;
use std::path::PathBuf;

/// A simple fixed-width text table, printed the way the paper's figures
/// label their series.
pub struct Table {
    headers: Vec<String>,
    widths: Vec<usize>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let widths = headers.iter().map(|h| h.len()).collect();
        Table { headers, widths, rows: Vec::new() }
    }

    /// Append a row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        for (w, c) in self.widths.iter_mut().zip(&cells) {
            *w = (*w).max(c.len());
        }
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &self.widths));
        out.push('\n');
        out.push_str(&"-".repeat(self.widths.iter().sum::<usize>() + 2 * (self.widths.len() - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &self.widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Writes machine-readable experiment results under `target/experiments/`.
pub struct ExperimentSink {
    dir: PathBuf,
}

impl ExperimentSink {
    /// Sink rooted at `target/experiments` relative to the workspace (or
    /// `$WIKISEARCH_EXPERIMENT_DIR` if set).
    pub fn new() -> Self {
        let dir = std::env::var("WIKISEARCH_EXPERIMENT_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("target/experiments"));
        ExperimentSink { dir }
    }

    /// Write one experiment's record as pretty JSON; returns the path.
    pub fn write<T: Serialize>(&self, name: &str, record: &T) -> std::io::Result<PathBuf> {
        fs::create_dir_all(&self.dir)?;
        let path = self.dir.join(format!("{name}.json"));
        fs::write(&path, serde_json::to_string_pretty(record).expect("serializable"))?;
        Ok(path)
    }
}

impl Default for ExperimentSink {
    fn default() -> Self {
        Self::new()
    }
}

/// Format a `Duration` in the paper's milliseconds convention.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(vec!["engine", "ms"]);
        t.row(vec!["GPU-Par", "1.25"]);
        t.row(vec!["BANKS-II", "5000.00"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), lines[2].len());
        assert!(lines[3].contains("BANKS-II"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn table_rejects_wrong_arity() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn sink_writes_json() {
        let dir = std::env::temp_dir().join(format!("ws-exp-{}", std::process::id()));
        std::env::set_var("WIKISEARCH_EXPERIMENT_DIR", &dir);
        let sink = ExperimentSink::new();
        std::env::remove_var("WIKISEARCH_EXPERIMENT_DIR");
        let path = sink.write("probe", &serde_json::json!({"x": 1})).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.contains("\"x\": 1"));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn ms_formats_millis() {
        assert_eq!(ms(std::time::Duration::from_micros(1250)), "1.25");
    }
}
