//! Strongly-typed identifiers for nodes and edge labels.
//!
//! Both are thin `u32` newtypes: the paper's datasets top out at tens of
//! millions of nodes, so 32-bit indices halve the CSR footprint relative to
//! `usize` on 64-bit hosts (this matters for Table IV's storage accounting).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node in a [`crate::KnowledgeGraph`].
///
/// Node ids are dense: a graph with `n` nodes uses exactly the ids
/// `0..n`, which lets every per-node table in the search engine be a flat
/// array indexed by `NodeId`.
///
/// `repr(transparent)` pins the layout to a bare `u32` so id arrays can
/// live inside memory-mapped snapshots ([`crate::column::Pod`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(transparent)]
pub struct NodeId(pub u32);

/// Identifier of an edge label (a Wikidata-style property such as
/// `instance of` or `published in`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(transparent)]
pub struct LabelId(pub u32);

// Safety: transparent u32 newtypes — no padding, all bit patterns valid.
unsafe impl crate::column::Pod for NodeId {}
unsafe impl crate::column::Pod for LabelId {}

impl NodeId {
    /// The id as a `usize`, for indexing per-node arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a dense array index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        debug_assert!(i <= u32::MAX as usize, "node index overflows u32");
        NodeId(i as u32)
    }
}

impl LabelId {
    /// The id as a `usize`, for indexing per-label arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a dense array index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        debug_assert!(i <= u32::MAX as usize, "label index overflows u32");
        LabelId(i as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Debug for LabelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for LabelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips_through_index() {
        for i in [0usize, 1, 42, 1 << 20] {
            assert_eq!(NodeId::from_index(i).index(), i);
        }
    }

    #[test]
    fn label_id_round_trips_through_index() {
        for i in [0usize, 7, 1 << 16] {
            assert_eq!(LabelId::from_index(i).index(), i);
        }
    }

    #[test]
    fn display_formats_match_paper_notation() {
        assert_eq!(NodeId(3).to_string(), "v3");
        assert_eq!(LabelId(5).to_string(), "r5");
    }

    #[test]
    fn ids_order_by_numeric_value() {
        assert!(NodeId(1) < NodeId(2));
        assert!(LabelId(0) < LabelId(9));
    }
}
