//! The paper's worked examples, end to end through the public API:
//! Fig. 2 (hitting levels), Fig. 4 / Example 4 (the running example),
//! Fig. 5 / Example 5 (level-cover pruning).

use central::SearchParams;
use datagen::figures::{fig2_graph, fig4_graph, fig5_graph};
use wikisearch_engine::{Backend, WikiSearch};

#[test]
fn fig4_example_answer_is_centered_at_query_language_with_depth_4() {
    let (graph, activation) = fig4_graph();
    let mut ws = WikiSearch::build_with(graph, Backend::Sequential);
    let params = ws.params().clone().with_top_k(1).with_explicit_activation(activation);
    ws.set_params(params);
    let result = ws.search("XML RDF SQL");
    assert_eq!(result.answers.len(), 1);
    let best = &result.answers[0];
    assert_eq!(ws.graph().node_text(best.central), "Query language");
    assert_eq!(best.depth, 4);
    // The graph-shaped answer admits multiple RDF keyword nodes (v4 and
    // v5) — the paper's Fig. 1 argument for graphs over trees.
    let rdf_nodes = &best.keyword_nodes[1];
    assert_eq!(rdf_nodes.len(), 2, "both RDF nodes belong to the answer");
    // Multi-paths from XML: the answer keeps more than one hitting path.
    assert!(best.num_edges() > best.num_nodes() - 1, "graph, not a tree");
}

#[test]
fn fig2_central_graph_has_multi_paths() {
    let graph = fig2_graph();
    let mut ws = WikiSearch::build_with(graph, Backend::Sequential);
    let params = ws.params().clone().with_top_k(5).with_explicit_activation(vec![0; 5]);
    ws.set_params(params);
    let result = ws.search("alpha beta");
    // v3 is the depth-1 central node (Example 3); its Central Graph
    // covers the hitting paths v0→v3 and v1→v3.
    assert_eq!(result.answers.len(), 1);
    let best = &result.answers[0];
    assert_eq!(ws.graph().node_key(best.central), "v3");
    assert_eq!(best.depth, 1);
    assert_eq!(best.num_nodes(), 3);
    assert_eq!(best.num_edges(), 2);
}

#[test]
fn fig5_level_cover_prunes_jeffrey_satellites() {
    let (graph, stanford, ullman, satellites) = fig5_graph();
    let mut ws = WikiSearch::build_with(graph, Backend::Sequential);
    let params = ws.params().clone().with_top_k(10).with_explicit_activation(vec![0; 5]);
    ws.set_params(params);
    let result = ws.search("Stanford Jeffrey Ullman");
    let stanford_answer = result
        .answers
        .iter()
        .find(|a| a.central == stanford)
        .expect("the Stanford-centered answer exists");
    // Example 5: "After pruning nodes with only one keyword 'Jeffrey', we
    // have an answer with only Stanford University and Jeffrey Ullman".
    assert!(stanford_answer.contains_node(ullman));
    for s in &satellites {
        assert!(!stanford_answer.contains_node(*s));
    }
    assert_eq!(stanford_answer.num_nodes(), 2);
}

#[test]
fn fig4_sequential_and_parallel_backends_reproduce_the_same_example() {
    for backend in [Backend::ParCpu(3), Backend::GpuStyle(3), Backend::DynPar(3)] {
        let (graph, activation) = fig4_graph();
        let mut ws = WikiSearch::build_with(graph, backend);
        let params = SearchParams::default().with_top_k(1).with_explicit_activation(activation);
        ws.set_params(params);
        let result = ws.search("XML RDF SQL");
        assert_eq!(result.answers.len(), 1, "{backend:?}");
        assert_eq!(
            ws.graph().node_text(result.answers[0].central),
            "Query language",
            "{backend:?}"
        );
        assert_eq!(result.answers[0].depth, 4, "{backend:?}");
    }
}
