//! Appendix experiment: measure the BLINKS index cost that made the paper
//! exclude BLINKS from its evaluation ("needs to pre-compute keyword-node
//! lists and node-keyword map, which are infeasible on Wikidata KB").
fn main() {
    wikisearch_bench::experiments::blinks_cost::run();
}
