//! Criterion micro-benchmarks of the substrate hot paths: text analysis,
//! weighting, activation mapping, index lookups, and session (epoch-
//! stamped state) reuse vs per-query allocation.

use central::engine::{KeywordSearchEngine, SeqEngine};
use central::state::SearchState;
use central::{SearchParams, SearchSession};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use datagen::synthetic::{SyntheticConfig, ZipfTable};
use kgraph::weights::degree_of_summary;
use textindex::{analyze, porter_stem, tokenize, InvertedIndex, ParsedQuery};

fn bench_text_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("text");
    g.bench_function("porter_stem", |b| {
        b.iter(|| {
            for w in ["relational", "connections", "probabilistic", "mining", "retrieval"] {
                black_box(porter_stem(black_box(w)));
            }
        })
    });
    g.bench_function("tokenize_label", |b| {
        b.iter(|| {
            black_box(tokenize(black_box("Statistical Relational Learning, 2nd ed. (AAAI-14)")))
        })
    });
    g.bench_function("analyze_label", |b| {
        b.iter(|| black_box(analyze(black_box("the bayesian inference of markov networks"))))
    });
    g.finish();
}

fn bench_weights_and_zipf(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate");
    let counts: Vec<u32> = (1..40).collect();
    g.bench_function("degree_of_summary_40_labels", |b| {
        b.iter(|| black_box(degree_of_summary(black_box(&counts))))
    });
    let zipf = ZipfTable::new(100_000, 1.05);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    g.bench_function("zipf_sample_100k", |b| b.iter(|| black_box(zipf.sample(&mut rng))));
    g.finish();
}

fn bench_index(c: &mut Criterion) {
    let ds = SyntheticConfig::tiny(7).generate();
    let mut g = c.benchmark_group("index");
    g.bench_function("build_inverted_index_tiny", |b| {
        b.iter(|| black_box(InvertedIndex::build(black_box(&ds.graph))))
    });
    let idx = InvertedIndex::build(&ds.graph);
    g.bench_function("lookup", |b| b.iter(|| black_box(idx.lookup(black_box("learning")))));
    g.finish();
}

/// Cold vs warm state setup, and cold vs warm full searches: the cold
/// path allocates and seeds `M`/`FIdentifier`/`CIdentifier` per query,
/// the warm path re-arms one epoch-stamped allocation (a single epoch
/// bump plus source seeding). The gap is the Initialization-phase saving
/// a reused `SearchSession` delivers on every query after the first.
fn bench_warm_vs_cold_state(c: &mut Criterion) {
    let ds = SyntheticConfig::tiny(11).generate();
    let idx = InvertedIndex::build(&ds.graph);
    let query = ParsedQuery::parse(&idx, "learning networks");
    let params = SearchParams::default().with_average_distance(2.5);

    let mut g = c.benchmark_group("warm_vs_cold_state");
    // State-level: allocate-and-seed vs epoch-bump-and-seed at a
    // wiki-dump-scale n, where the O(n·q) cold setup is the entire cost.
    let n = 200_000;
    g.bench_function("state_cold_alloc", |b| {
        b.iter(|| black_box(SearchState::new(black_box(n), black_box(&query))))
    });
    let mut warm = SearchState::new(n, &query);
    g.bench_function("state_warm_epoch_bump", |b| {
        b.iter(|| {
            warm.begin_query(black_box(n), black_box(&query));
            black_box(warm.epoch())
        })
    });
    // End-to-end on the tiny graph: here expansion dominates, so warm and
    // cold should be statistically indistinguishable — the session must
    // never be *slower*.
    let engine = SeqEngine::new();
    g.bench_function("search_cold", |b| {
        b.iter(|| black_box(engine.search(&ds.graph, &query, &params).answers.len()))
    });
    let mut session = SearchSession::new();
    g.bench_function("search_warm_session", |b| {
        b.iter(|| {
            black_box(engine.search_session(&mut session, &ds.graph, &query, &params).answers.len())
        })
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_text_pipeline, bench_weights_and_zipf, bench_index, bench_warm_vs_cold_state
}
criterion_main!(benches);
