//! Result-cache effectiveness: qps with/without the sharded result cache
//! under a Zipf-skewed repeated-query stream.
fn main() {
    wikisearch_bench::experiments::cache_hit_rate::run();
}
