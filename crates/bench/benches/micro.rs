//! Criterion micro-benchmarks of the substrate hot paths: text analysis,
//! weighting, activation mapping and index lookups.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use datagen::synthetic::{SyntheticConfig, ZipfTable};
use kgraph::weights::degree_of_summary;
use textindex::{analyze, porter_stem, tokenize, InvertedIndex};

fn bench_text_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("text");
    g.bench_function("porter_stem", |b| {
        b.iter(|| {
            for w in ["relational", "connections", "probabilistic", "mining", "retrieval"] {
                black_box(porter_stem(black_box(w)));
            }
        })
    });
    g.bench_function("tokenize_label", |b| {
        b.iter(|| black_box(tokenize(black_box("Statistical Relational Learning, 2nd ed. (AAAI-14)"))))
    });
    g.bench_function("analyze_label", |b| {
        b.iter(|| black_box(analyze(black_box("the bayesian inference of markov networks"))))
    });
    g.finish();
}

fn bench_weights_and_zipf(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate");
    let counts: Vec<u32> = (1..40).collect();
    g.bench_function("degree_of_summary_40_labels", |b| {
        b.iter(|| black_box(degree_of_summary(black_box(&counts))))
    });
    let zipf = ZipfTable::new(100_000, 1.05);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    g.bench_function("zipf_sample_100k", |b| b.iter(|| black_box(zipf.sample(&mut rng))));
    g.finish();
}

fn bench_index(c: &mut Criterion) {
    let ds = SyntheticConfig::tiny(7).generate();
    let mut g = c.benchmark_group("index");
    g.bench_function("build_inverted_index_tiny", |b| {
        b.iter(|| black_box(InvertedIndex::build(black_box(&ds.graph))))
    });
    let idx = InvertedIndex::build(&ds.graph);
    g.bench_function("lookup", |b| b.iter(|| black_box(idx.lookup(black_box("learning")))));
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_text_pipeline, bench_weights_and_zipf, bench_index
}
criterion_main!(benches);
