//! Side-by-side comparison: Central Graph engines vs BANKS-II on the same
//! synthetic KB — answers and running time (a miniature of the paper's
//! Exp-1 + effectiveness discussion).
//!
//! ```text
//! cargo run --release -p wikisearch-examples --bin compare_banks
//! ```

use banks::{BanksII, BanksParams};
use central::engine::{GpuStyleEngine, KeywordSearchEngine, ParCpuEngine, SeqEngine};
use central::SearchParams;
use datagen::synthetic::SyntheticConfig;
use datagen::QueryWorkload;
use textindex::{InvertedIndex, ParsedQuery};

fn main() {
    let mut config = SyntheticConfig::tiny(42);
    config.num_entities = 6000;
    config.name = "demo".into();
    let ds = config.generate();
    let graph = &ds.graph;
    let index = InvertedIndex::build(graph);
    let a = kgraph::sampling::estimate_average_distance_sources(graph, 16, 32, 32, 1).mean;
    println!(
        "dataset: {} nodes / {} edges, A = {a:.2}\n",
        graph.num_nodes(),
        graph.num_directed_edges()
    );

    let params = SearchParams::default().with_average_distance(a).with_top_k(10);
    let banks_params = BanksParams::default().with_top_k(10).with_node_budget(500_000);

    let engines: Vec<Box<dyn KeywordSearchEngine>> = vec![
        Box::new(SeqEngine::new()),
        Box::new(ParCpuEngine::new(4)),
        Box::new(GpuStyleEngine::new(4)),
    ];
    let banks = BanksII::new();

    let mut workload = QueryWorkload::new(7);
    for knum in [4usize, 6] {
        let raw = workload.query(knum);
        let query = ParsedQuery::parse(&index, &raw);
        println!("query ({knum} keywords): {raw:?} — {} matched groups", query.num_keywords());

        for e in &engines {
            let out = e.search(graph, &query, &params);
            println!(
                "  {:<10} {:>8.2} ms  {} answers (depth of best: {})",
                e.name(),
                out.profile.total().as_secs_f64() * 1e3,
                out.answers.len(),
                out.answers.first().map_or(0, |a| a.depth)
            );
        }
        let bout = banks.search(graph, &query, &banks_params);
        println!(
            "  {:<10} {:>8.2} ms  {} answers ({} queue pops{})",
            "BANKS-II",
            bout.elapsed.as_secs_f64() * 1e3,
            bout.answers.len(),
            bout.pops,
            if bout.budget_exhausted {
                ", budget hit"
            } else {
                ""
            }
        );

        // Show what the two models return for the same query.
        if let Some(best) = engines[0].search(graph, &query, &params).answers.first() {
            println!(
                "  best Central Graph: {} nodes / {} edges centered at {:?} ({})",
                best.num_nodes(),
                best.num_edges(),
                best.central,
                graph.node_text(best.central)
            );
        }
        if let Some(tree) = bout.answers.first() {
            println!(
                "  best BANKS tree:    {} nodes rooted at {:?} ({}), score {:.2}",
                tree.nodes.len(),
                tree.root,
                graph.node_text(tree.root),
                tree.score
            );
        }
        println!();
    }
    println!(
        "The Central Graph engines answer in one level-synchronous sweep and can\n\
         use every core; BANKS-II pops one node at a time from a global priority\n\
         queue — the sequential dependency the paper set out to remove."
    );
}
