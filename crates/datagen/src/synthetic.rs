//! Wikidata-shaped synthetic graph generator.
//!
//! The experiments only depend on the *shape* of Wikidata (DESIGN.md §3):
//!
//! * **summary/class hubs** — a small set of class nodes (`human`,
//!   `scholarly article`, …) absorbing one `instance of` edge from every
//!   entity, with Zipf-skewed popularity: huge same-label in-degree ⇒ the
//!   top of the degree-of-summary weighting, exactly like the paper's
//!   `human` node;
//! * **skewed entity in-degrees** — entity→entity edges choose targets by
//!   a Zipf law, producing hub entities; popular targets concentrate their
//!   in-edges in few predicates (low label diversity ⇒ high weight), rare
//!   targets spread over many predicates;
//! * **realistic labels** — node texts are drawn from the workload
//!   vocabulary so query keywords have skewed, non-trivial frequencies
//!   (the Table V `kwf` columns).
//!
//! `wiki2017_sim` / `wiki2018_sim` mirror the two dumps of Table II at
//! laptop scale; set `WIKISEARCH_SCALE` (a float multiplier) to grow or
//! shrink them.

use crate::workload::VOCAB;
use kgraph::{GraphBuilder, KnowledgeGraph};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Labels for class/summary nodes, mirroring Wikidata's biggest classes.
static CLASS_LABELS: &[&str] = &[
    "human",
    "scholarly article",
    "taxon",
    "film",
    "village",
    "conference proceedings",
    "research article",
    "painting",
    "asteroid",
    "gene",
    "protein",
    "book",
    "album",
    "mountain",
    "river",
    "road",
    "railway station",
    "company",
    "university",
    "journal",
];

/// Predicate vocabulary (Wikidata-property style).
static PREDICATES: &[&str] = &[
    "instance of",
    "subclass of",
    "part of",
    "main subject",
    "author",
    "published in",
    "cites work",
    "educated at",
    "employer",
    "member of",
    "located in",
    "country",
    "field of work",
    "influenced by",
    "follows",
    "followed by",
    "uses",
    "based on",
    "named after",
    "discoverer",
    "developer",
    "maintained by",
    "depicts",
    "genre",
    "occupation",
    "award received",
    "notable work",
    "contributor",
    "editor",
    "sponsor",
];

/// Generator parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Dataset display name.
    pub name: String,
    /// Number of entity nodes (class nodes come on top).
    pub num_entities: usize,
    /// Number of class/summary nodes.
    pub num_classes: usize,
    /// Average entity→entity edges per entity (on top of the one
    /// `instance of` edge per entity).
    pub entity_edges_per_node: f64,
    /// Zipf exponent of target popularity (≈1 matches web-like skew).
    pub zipf_exponent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SyntheticConfig {
    /// Laptop-scale analogue of the paper's wiki2017 dump
    /// (15.1M nodes / 124M edges ⇒ ~8.2 edges/node).
    pub fn wiki2017_sim() -> Self {
        let scale = env_scale();
        SyntheticConfig {
            name: "wiki2017-sim".into(),
            num_entities: (60_000.0 * scale) as usize,
            num_classes: 150,
            entity_edges_per_node: 7.2,
            zipf_exponent: 0.82,
            seed: 2017,
        }
    }

    /// Laptop-scale analogue of the paper's wiki2018 dump
    /// (30.6M nodes / 271M edges ⇒ ~8.9 edges/node).
    pub fn wiki2018_sim() -> Self {
        let scale = env_scale();
        SyntheticConfig {
            name: "wiki2018-sim".into(),
            num_entities: (120_000.0 * scale) as usize,
            num_classes: 250,
            entity_edges_per_node: 7.9,
            zipf_exponent: 0.82,
            seed: 2018,
        }
    }

    /// A small instance for unit/integration tests.
    pub fn tiny(seed: u64) -> Self {
        SyntheticConfig {
            name: "tiny".into(),
            num_entities: 800,
            num_classes: 12,
            entity_edges_per_node: 4.0,
            zipf_exponent: 1.0,
            seed,
        }
    }

    /// Generate the dataset.
    pub fn generate(&self) -> SyntheticDataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = self.num_entities;
        let mut b = GraphBuilder::with_capacity(
            n + self.num_classes,
            n + (n as f64 * self.entity_edges_per_node) as usize,
        );

        // Class nodes first (ids 0..num_classes).
        for c in 0..self.num_classes {
            let base = CLASS_LABELS[c % CLASS_LABELS.len()];
            let label = if c < CLASS_LABELS.len() {
                base.to_string()
            } else {
                format!("{base} category {c}")
            };
            b.add_node(&format!("C{c}"), &label);
        }

        // Entity nodes with vocabulary-phrase labels. A fraction get two
        // phrases (multi-topic entities), creating keyword co-occurrence.
        for e in 0..n {
            let p1 = VOCAB.choose(&mut rng).unwrap();
            let label = if rng.random_bool(0.12) {
                let p2 = VOCAB.choose(&mut rng).unwrap();
                format!("{p1} {p2} {e}")
            } else {
                format!("{p1} {e}")
            };
            b.add_node(&format!("Q{e}"), &label);
        }

        let class_zipf = ZipfTable::new(self.num_classes, self.zipf_exponent + 0.2);
        let entity_zipf = ZipfTable::new(n, self.zipf_exponent);
        let instance_of = b.label("instance of");

        // One `instance of` per entity to a Zipf-popular class: the
        // single-label floods that create summary hubs.
        for e in 0..n {
            let class = class_zipf.sample(&mut rng);
            let src = b.node(&format!("Q{e}")).unwrap();
            let dst = b.node(&format!("C{class}")).unwrap();
            b.add_edge_with_label(src, dst, instance_of);
        }

        // Entity→entity edges with Zipf-popular targets. Popular targets
        // use few predicates (low label diversity ⇒ summary-like), rare
        // targets draw uniformly.
        let pred_ids: Vec<_> = PREDICATES.iter().map(|p| b.label(p)).collect();
        let total_extra = (n as f64 * self.entity_edges_per_node) as usize;
        for _ in 0..total_extra {
            let s = rng.random_range(0..n);
            let mut t = entity_zipf.sample(&mut rng);
            if t == s {
                t = (t + 1) % n;
            }
            let pred = if t < n / 100 {
                // hot target: concentrate on 3 predicates keyed by target
                pred_ids[(t * 7 + rng.random_range(0..3usize)) % 5 + 1]
            } else {
                pred_ids[rng.random_range(1..pred_ids.len())]
            };
            let src = b.node(&format!("Q{s}")).unwrap();
            let dst = b.node(&format!("Q{t}")).unwrap();
            b.add_edge_with_label(src, dst, pred);
        }

        // Chain stitching: guarantee weak connectivity so sampled average
        // distances are well-defined (Wikidata is one giant component).
        for e in 1..n {
            if rng.random_bool(0.02) {
                let src = b.node(&format!("Q{e}")).unwrap();
                let dst = b.node(&format!("Q{}", rng.random_range(0..e))).unwrap();
                b.add_edge(src, dst, "follows");
            }
        }
        for e in 0..n.min(self.num_classes * 4) {
            // tie early entities to classes' neighborhood densely enough
            // that class hubs sit on many shortest paths
            if e % 4 == 0 {
                let src = b.node(&format!("Q{e}")).unwrap();
                let dst = b.node(&format!("C{}", e % self.num_classes)).unwrap();
                b.add_edge(src, dst, "main subject");
            }
        }

        SyntheticDataset { graph: b.build(), config: self.clone() }
    }
}

/// A generated dataset: the graph plus the config that produced it.
pub struct SyntheticDataset {
    /// The generated knowledge graph.
    pub graph: KnowledgeGraph,
    /// Generation parameters (for provenance in experiment output).
    pub config: SyntheticConfig,
}

fn env_scale() -> f64 {
    std::env::var("WIKISEARCH_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|s| *s > 0.0)
        .unwrap_or(1.0)
}

/// Zipf sampler over `0..n` via a precomputed CDF + binary search.
/// Rank 0 is the most popular item.
pub struct ZipfTable {
    cdf: Vec<f64>,
}

impl ZipfTable {
    /// Table for `n` items with exponent `s`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf over empty domain");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfTable { cdf }
    }

    /// Draw one rank.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let table = ZipfTable::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 1000];
        for _ in 0..20_000 {
            counts[table.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[100] && counts[0] > counts[999]);
        assert!(counts[0] > 1000, "rank 0 should absorb a large share");
    }

    #[test]
    fn tiny_dataset_has_expected_shape() {
        let ds = SyntheticConfig::tiny(5).generate();
        let g = &ds.graph;
        g.check_invariants().unwrap();
        assert_eq!(g.num_nodes(), 800 + 12);
        // one instance-of per entity plus the extra edges
        assert!(g.num_directed_edges() >= 800);
        // the most popular class is a heavy summary hub
        let c0 = g.find_node_by_key("C0").unwrap();
        assert!(g.in_degree(c0) > 50, "class hub in-degree {}", g.in_degree(c0));
        assert!(g.weight(c0) > 0.5, "class hub weight {}", g.weight(c0));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticConfig::tiny(9).generate();
        let b = SyntheticConfig::tiny(9).generate();
        assert_eq!(a.graph.num_nodes(), b.graph.num_nodes());
        assert_eq!(a.graph.num_directed_edges(), b.graph.num_directed_edges());
        let v = a.graph.nodes().nth(42).unwrap();
        assert_eq!(a.graph.node_text(v), b.graph.node_text(v));
    }

    #[test]
    fn labels_contain_vocabulary_phrases() {
        let ds = SyntheticConfig::tiny(3).generate();
        let g = &ds.graph;
        let q0 = g.find_node_by_key("Q0").unwrap();
        let text = g.node_text(q0);
        assert!(
            VOCAB.iter().any(|p| text.contains(p)),
            "entity label {text:?} should embed a vocabulary phrase"
        );
    }

    #[test]
    fn presets_differ_in_size() {
        // Don't generate the full presets in unit tests; just check configs.
        let a = SyntheticConfig::wiki2017_sim();
        let b = SyntheticConfig::wiki2018_sim();
        assert!(b.num_entities > a.num_entities);
        assert!(b.entity_edges_per_node > a.entity_edges_per_node);
    }
}
