//! Inverted index: analyzed term → sorted posting list of nodes.
//!
//! This is the `T_i` provider of the paper (Sec. III): for each query
//! keyword `t_i`, the set of nodes containing it. Unlike BLINKS-style
//! approaches the engine needs **no** precomputed keyword–node distance
//! structures — only these posting lists — which is exactly the paper's
//! scalability argument against BLINKS on a 5M-keyword KB.
//!
//! The index is stored in one canonical columnar shape on both backings:
//! a lexicographically sorted term table ([`StrTable`]) plus a CSR of
//! posting lists (`posting_offsets` delimiting one flat [`NodeId`]
//! column). Term lookup is a binary search over the sorted table. The
//! same four columns serialize into `.wsnap` snapshot sections (ids
//! 20–24) and map back zero-copy, so a heap-built index and a
//! mapped one are structurally identical — the property the
//! `mmap_equivalence` differential suite leans on.

use crate::analyzer::analyze_unique;
use kgraph::snapshot::{Snapshot, SnapshotWriter};
use kgraph::{Column, KgraphError, KnowledgeGraph, NodeId, StrTable};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Snapshot section: term string-table offsets (`num_terms + 1` × u64).
pub const SEC_TERM_OFFSETS: u32 = 20;
/// Snapshot section: term string-table UTF-8 arena.
pub const SEC_TERM_BYTES: u32 = 21;
/// Snapshot section: posting-list CSR offsets (`num_terms + 1` × u64).
pub const SEC_POSTING_OFFSETS: u32 = 22;
/// Snapshot section: flat posting lists (u32 node ids).
pub const SEC_POSTINGS: u32 = 23;
/// Snapshot section: index metadata (`num_nodes` as one u64).
pub const SEC_INDEX_META: u32 = 24;

/// Inverted index over a graph's node texts.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct InvertedIndex {
    /// Distinct analyzed terms, lexicographically sorted.
    terms: StrTable,
    /// CSR offsets: posting list `i` is `postings[offsets[i]..offsets[i+1]]`.
    posting_offsets: Column<u64>,
    /// All posting lists, concatenated in term order; each list is a
    /// sorted, deduplicated run of node ids.
    postings: Column<NodeId>,
    num_nodes: usize,
}

impl InvertedIndex {
    /// Build the index by analyzing every node's text.
    pub fn build(g: &KnowledgeGraph) -> Self {
        let mut by_term: BTreeMap<String, Vec<NodeId>> = BTreeMap::new();
        for v in g.nodes() {
            for term in analyze_unique(g.node_text(v)) {
                by_term.entry(term).or_default().push(v);
            }
        }
        // Node texts are analyzed in node-id order with per-text dedup, so
        // each posting list is already sorted and unique.
        debug_assert!(by_term.values().all(|p| p.windows(2).all(|w| w[0] < w[1])));
        let mut posting_offsets: Vec<u64> = vec![0];
        let mut postings: Vec<NodeId> = Vec::new();
        for list in by_term.values() {
            postings.extend_from_slice(list);
            posting_offsets.push(postings.len() as u64);
        }
        InvertedIndex {
            terms: StrTable::from_strings(by_term.keys()),
            posting_offsets: posting_offsets.into(),
            postings: postings.into(),
            num_nodes: g.num_nodes(),
        }
    }

    /// Number of distinct analyzed terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Number of indexed nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Binary search for `term` in the sorted term table.
    fn term_index(&self, term: &str) -> Option<usize> {
        let (mut lo, mut hi) = (0usize, self.terms.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.terms.get(mid).cmp(term) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Some(mid),
            }
        }
        None
    }

    /// Posting list for a *raw* (unanalyzed) term; the term is pushed
    /// through the same pipeline as node labels. Multi-word input uses the
    /// first analyzed token. Returns `None` for stopword-only input or
    /// terms absent from the corpus.
    pub fn lookup(&self, raw_term: &str) -> Option<&[NodeId]> {
        let analyzed = analyze_unique(raw_term);
        let term = analyzed.first()?;
        self.lookup_analyzed(term)
    }

    /// Posting list for an already-analyzed term.
    pub fn lookup_analyzed(&self, term: &str) -> Option<&[NodeId]> {
        let i = self.term_index(term)?;
        let lo = self.posting_offsets[i] as usize;
        let hi = self.posting_offsets[i + 1] as usize;
        Some(&self.postings[lo..hi])
    }

    /// Document frequency of an analyzed term (0 if absent). This is the
    /// per-keyword `kwf` quantity of the paper's Table V.
    pub fn frequency(&self, term: &str) -> usize {
        self.lookup_analyzed(term).map_or(0, |p| p.len())
    }

    /// Average keyword frequency over a set of analyzed terms — the `kwf`
    /// column of Table V (terms missing from the corpus count as 0).
    pub fn avg_frequency<'a>(&self, terms: impl IntoIterator<Item = &'a str>) -> f64 {
        let mut sum = 0usize;
        let mut n = 0usize;
        for t in terms {
            sum += self.frequency(t);
            n += 1;
        }
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }

    /// Iterator over `(term, document frequency)` pairs, in term order.
    pub fn term_frequencies(&self) -> impl Iterator<Item = (&str, usize)> + '_ {
        (0..self.terms.len()).map(move |i| {
            let df = (self.posting_offsets[i + 1] - self.posting_offsets[i]) as usize;
            (self.terms.get(i), df)
        })
    }

    /// `true` when the index is served from a memory-mapped snapshot.
    pub fn is_memory_mapped(&self) -> bool {
        self.postings.is_mapped()
    }

    /// Approximate bytes used by the index (postings + term table),
    /// whether heap-resident or mapped.
    pub fn approx_bytes(&self) -> usize {
        self.postings.len() * std::mem::size_of::<NodeId>()
            + self.posting_offsets.len() * std::mem::size_of::<u64>()
            + self.terms.approx_bytes()
    }

    /// Write the index's four sections (ids 20–24) into `w`, alongside
    /// whatever graph sections are already there.
    pub fn write_snapshot_sections(&self, w: &mut SnapshotWriter) -> std::io::Result<()> {
        w.section_str_table(SEC_TERM_OFFSETS, SEC_TERM_BYTES, &self.terms)?;
        w.section_pod(SEC_POSTING_OFFSETS, &self.posting_offsets)?;
        w.section_pod(SEC_POSTINGS, &self.postings)?;
        w.section_pod(SEC_INDEX_META, &[self.num_nodes as u64])
    }

    /// Reassemble a zero-copy index over `snap`'s sections. Cheap length
    /// cross-checks only, mirroring the graph open path.
    pub fn from_snapshot(snap: &Snapshot) -> Result<Self, KgraphError> {
        let snap_err =
            |m: String| KgraphError::Snapshot { message: format!("inverted index: {m}") };
        let terms = snap.str_table(SEC_TERM_OFFSETS, SEC_TERM_BYTES)?;
        let posting_offsets: Column<u64> = snap.column(SEC_POSTING_OFFSETS)?;
        let postings: Column<NodeId> = snap.column(SEC_POSTINGS)?;
        let meta: Column<u64> = snap.column(SEC_INDEX_META)?;
        if meta.len() != 1 {
            return Err(snap_err(format!("meta section holds {} values, expected 1", meta.len())));
        }
        if posting_offsets.len() != terms.len() + 1 {
            return Err(snap_err(format!(
                "{} posting offsets for {} terms",
                posting_offsets.len(),
                terms.len()
            )));
        }
        match posting_offsets.last() {
            Some(&last) if last as usize == postings.len() => {}
            Some(&last) => {
                return Err(snap_err(format!(
                    "final posting offset {last} does not cover {} postings",
                    postings.len()
                )))
            }
            None => return Err(snap_err("empty posting offset section".into())),
        }
        Ok(InvertedIndex { terms, posting_offsets, postings, num_nodes: meta[0] as usize })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::GraphBuilder;

    fn sample() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        b.add_node("Q1", "SPARQL query language for RDF");
        b.add_node("Q2", "RDF query language");
        b.add_node("Q3", "XPath");
        b.add_node("Q4", "the of and"); // stopwords only: indexes nothing
        b.build()
    }

    #[test]
    fn postings_are_sorted_unique_node_lists() {
        let g = sample();
        let idx = InvertedIndex::build(&g);
        let rdf = idx.lookup("RDF").unwrap();
        assert_eq!(rdf.len(), 2);
        assert!(rdf.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn lookup_analyzes_its_argument() {
        let g = sample();
        let idx = InvertedIndex::build(&g);
        // "languages" stems to the same term as "language"
        assert_eq!(idx.lookup("languages").unwrap().len(), 2);
        // stopword-only lookups miss
        assert!(idx.lookup("the").is_none());
        assert!(idx.lookup("nonexistent").is_none());
    }

    #[test]
    fn frequencies_and_kwf() {
        let g = sample();
        let idx = InvertedIndex::build(&g);
        assert_eq!(idx.frequency("rdf"), 2);
        assert_eq!(idx.frequency("xpath"), 1);
        assert_eq!(idx.frequency("missing"), 0);
        let kwf = idx.avg_frequency(["rdf", "xpath"]);
        assert!((kwf - 1.5).abs() < 1e-9);
        assert_eq!(idx.avg_frequency(std::iter::empty::<&str>()), 0.0);
    }

    #[test]
    fn stopword_only_node_is_unindexed() {
        let g = sample();
        let idx = InvertedIndex::build(&g);
        for (_, freq) in idx.term_frequencies() {
            assert!(freq >= 1);
        }
        // no term points at Q4
        let q4 = g.find_node_by_key("Q4").unwrap();
        for (t, _) in idx.term_frequencies() {
            assert!(!idx.lookup_analyzed(t).unwrap().contains(&q4));
        }
    }

    #[test]
    fn index_counts() {
        let g = sample();
        let idx = InvertedIndex::build(&g);
        assert_eq!(idx.num_nodes(), 4);
        // sparql, query, languag, rdf, xpath
        assert_eq!(idx.num_terms(), 5);
        assert!(idx.approx_bytes() > 0);
    }

    #[test]
    fn terms_are_sorted_for_binary_search() {
        let g = sample();
        let idx = InvertedIndex::build(&g);
        let terms: Vec<&str> = idx.term_frequencies().map(|(t, _)| t).collect();
        let mut sorted = terms.clone();
        sorted.sort_unstable();
        assert_eq!(terms, sorted);
        for t in terms {
            assert!(idx.lookup_analyzed(t).is_some());
        }
    }

    #[test]
    fn duplicate_words_in_one_label_index_once() {
        let mut b = GraphBuilder::new();
        b.add_node("n", "data data data");
        let g = b.build();
        let idx = InvertedIndex::build(&g);
        assert_eq!(idx.frequency("data"), 1);
    }

    #[test]
    fn empty_index_looks_up_nothing() {
        let idx = InvertedIndex::build(&GraphBuilder::new().build());
        assert_eq!(idx.num_terms(), 0);
        assert!(idx.lookup("anything").is_none());
        let d = InvertedIndex::default();
        assert!(d.lookup_analyzed("x").is_none());
    }

    #[test]
    fn snapshot_round_trip_is_identical() {
        let path =
            std::env::temp_dir().join(format!("textindex-snap-{}.wsnap", std::process::id()));
        let g = sample();
        let idx = InvertedIndex::build(&g);
        let mut w = SnapshotWriter::create(&path).unwrap();
        idx.write_snapshot_sections(&mut w).unwrap();
        w.finish().unwrap();
        let snap = Snapshot::open(&path).unwrap();
        snap.verify_checksums().unwrap();
        let idx2 = InvertedIndex::from_snapshot(&snap).unwrap();
        assert!(idx2.is_memory_mapped());
        assert_eq!(idx2.num_terms(), idx.num_terms());
        assert_eq!(idx2.num_nodes(), idx.num_nodes());
        for (t, df) in idx.term_frequencies() {
            assert_eq!(idx2.frequency(t), df);
            assert_eq!(idx2.lookup_analyzed(t), idx.lookup_analyzed(t));
        }
        let _ = std::fs::remove_file(path);
    }
}
