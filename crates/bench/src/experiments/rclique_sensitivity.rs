//! Appendix experiment: r-clique parameter sensitivity, measured.
//!
//! The reproduced paper's criticism of the r-clique model (Sec. II):
//! the neighbor index "records shortest distances that are smaller than
//! R, where R should be larger than r. These parameters may be difficult
//! to fix in a graph with large variety." This harness sweeps `R`/`r` on
//! one synthetic KB and shows the two failure directions at once:
//!
//! * small `r` silently loses answerable queries (recall cliff);
//! * large `R` blows the index up super-linearly (hub balls).
//!
//! The Central Graph engine needs neither parameter — its per-query
//! state is the fixed O(q·|V|) matrix of Table IV.

use crate::queries_per_point;
use datagen::synthetic::SyntheticConfig;
use datagen::QueryWorkload;
use eval::runner::ExperimentSink;
use eval::Table;
use kgraph::MemoryFootprint;
use rclique::{NeighborIndex, RCliqueParams, RCliqueSearch};
use serde_json::json;
use textindex::{InvertedIndex, ParsedQuery};

/// The radius sweep.
pub const RADII: [u16; 4] = [1, 2, 3, 4];

/// Run the sensitivity sweep.
pub fn run() -> serde_json::Value {
    println!("== Appendix: r-clique parameter sensitivity ==");
    let mut cfg = SyntheticConfig::tiny(41);
    cfg.num_entities = 3000;
    let ds = cfg.generate();
    let inverted = InvertedIndex::build(&ds.graph);
    let nq = queries_per_point();
    let mut workload = QueryWorkload::new(5000);
    let queries: Vec<ParsedQuery> =
        workload.batch(4, nq).iter().map(|r| ParsedQuery::parse(&inverted, r)).collect();
    println!(
        "dataset: {} nodes / {} edges, {} queries (Knum = 4)",
        ds.graph.num_nodes(),
        ds.graph.num_directed_edges(),
        queries.len()
    );

    let mut table =
        Table::new(vec!["R=r", "index size", "build(ms)", "answered", "avg answers", "query(ms)"]);
    let mut points = Vec::new();
    for &radius in &RADII {
        let index = NeighborIndex::build(&ds.graph, radius);
        let search = RCliqueSearch::new(&ds.graph, &index);
        let params = RCliqueParams { r: radius, top_k: 20 };
        let t = std::time::Instant::now();
        let mut answered = 0usize;
        let mut total_answers = 0usize;
        for q in &queries {
            let answers = search.search(q, &params);
            answered += usize::from(!answers.is_empty());
            total_answers += answers.len();
        }
        let query_ms = t.elapsed().as_secs_f64() * 1e3 / queries.len() as f64;
        table.row(vec![
            radius.to_string(),
            MemoryFootprint::human(index.approx_bytes()),
            format!("{:.0}", index.build_time.as_secs_f64() * 1e3),
            format!("{}/{}", answered, queries.len()),
            format!("{:.1}", total_answers as f64 / queries.len() as f64),
            format!("{query_ms:.2}"),
        ]);
        points.push(json!({
            "radius": radius,
            "index_bytes": index.approx_bytes(),
            "build_ms": index.build_time.as_secs_f64() * 1e3,
            "answered": answered,
            "avg_answers": total_answers as f64 / queries.len() as f64,
            "query_ms": query_ms,
        }));
    }
    table.print();
    println!(
        "(small r loses queries; every +1 on R multiplies the index — the\n\
         parameter trap the paper describes. Central Graph per-query state on\n\
         this graph: {} regardless.)\n",
        MemoryFootprint::human(MemoryFootprint::for_search(&ds.graph, 4).max_running_storage())
    );
    let record = json!({ "experiment": "rclique_sensitivity", "points": points });
    if let Ok(path) = ExperimentSink::new().write("rclique_sensitivity", &record) {
        println!("json: {}", path.display());
    }
    record
}
