//! Embedded English stopword list.
//!
//! The paper applies "stopping word filtering" before indexing (Sec. II).
//! This is the classic short English list used by most IR systems; it is
//! checked via binary search over a sorted static table, so lookup is
//! allocation-free.

/// Sorted list of English stopwords.
static STOPWORDS: &[&str] = &[
    "a",
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "also",
    "am",
    "an",
    "and",
    "any",
    "are",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "cannot",
    "could",
    "did",
    "do",
    "does",
    "doing",
    "down",
    "during",
    "each",
    "et",
    "few",
    "for",
    "from",
    "further",
    "had",
    "has",
    "have",
    "having",
    "he",
    "her",
    "here",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "i",
    "if",
    "in",
    "into",
    "is",
    "it",
    "its",
    "itself",
    "just",
    "me",
    "more",
    "most",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "now",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "s",
    "same",
    "she",
    "should",
    "so",
    "some",
    "such",
    "t",
    "than",
    "that",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "these",
    "they",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "very",
    "was",
    "we",
    "were",
    "what",
    "when",
    "where",
    "which",
    "while",
    "who",
    "whom",
    "why",
    "will",
    "with",
    "would",
    "you",
    "your",
    "yours",
    "yourself",
    "yourselves",
];

/// `true` if `word` (already lowercased) is an English stopword.
///
/// ```
/// use textindex::is_stopword;
/// assert!(is_stopword("the"));
/// assert!(!is_stopword("database"));
/// ```
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.binary_search(&word).is_ok()
}

/// The number of embedded stopwords (exposed for tests and docs).
pub fn stopword_count() -> usize {
    STOPWORDS.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_sorted_and_deduped() {
        let mut sorted = STOPWORDS.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, STOPWORDS, "binary search requires sorted unique table");
    }

    #[test]
    fn common_words_are_stopwords() {
        for w in ["the", "of", "and", "in", "for", "with", "is"] {
            assert!(is_stopword(w), "{w} should be a stopword");
        }
    }

    #[test]
    fn content_words_are_not() {
        for w in ["database", "rdf", "keyword", "graph", "steiner", "wikidata"] {
            assert!(!is_stopword(w), "{w} must not be filtered");
        }
    }

    #[test]
    fn lookup_is_case_sensitive_by_contract() {
        // Callers must lowercase first (the tokenizer does).
        assert!(!is_stopword("The"));
    }

    #[test]
    fn count_is_plausible() {
        assert!(stopword_count() > 100);
    }
}
