//! Degree-of-summary node weighting (paper Sec. IV-A, Eq. 2).
//!
//! The paper observes that Wikidata has *summary nodes* — nodes like
//! `human` (over 2M `instance of` in-edges) or a conference node — that act
//! as meaningless shortcuts during search. It quantifies this as a
//! **degree of summary**:
//!
//! ```text
//!        Σ_{r ∈ R_i}  r̂ · log2(1 + r̂)
//! w_i =  ------------------------------          (Eq. 2)
//!              Σ_{r ∈ R_i}  r̂
//! ```
//!
//! where `R_i` is the set of in-edge labels of node `v_i` and `r̂` the count
//! of in-edges with that label. Many same-labeled in-edges ⇒ large weight;
//! diverse in-edge labels ⇒ the average pulls the weight back down. Weights
//! are then min–max normalized to `[0, 1]`.

/// Degree of summary for one node, given the histogram of its in-edge
/// label counts (Eq. 2). A node with no in-edges gets weight `0.0` — it
/// summarizes nothing.
///
/// ```
/// use kgraph::weights::degree_of_summary;
/// // 1000 in-edges, all the same label: strongly a summary node.
/// let hub = degree_of_summary(&[1000]);
/// // 1000 in-edges spread over many labels: much less so.
/// let varied = degree_of_summary(&[100; 10]);
/// assert!(hub > varied);
/// ```
pub fn degree_of_summary(in_label_counts: &[u32]) -> f32 {
    let total: u64 = in_label_counts.iter().map(|&c| c as u64).sum();
    if total == 0 {
        return 0.0;
    }
    let num: f64 = in_label_counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| (c as f64) * (1.0 + c as f64).log2())
        .sum();
    (num / total as f64) as f32
}

/// Min–max normalize raw weights into `[0, 1]` (the `w'_i` of Sec. IV-A).
/// If all weights are equal, everything maps to `0.0`.
pub fn normalize(raw: &[f32]) -> Vec<f32> {
    let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
    for &w in raw {
        lo = lo.min(w);
        hi = hi.max(w);
    }
    if raw.is_empty() || hi <= lo {
        return vec![0.0; raw.len()];
    }
    let span = hi - lo;
    raw.iter().map(|&w| (w - lo) / span).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_in_edges_weighs_zero() {
        assert_eq!(degree_of_summary(&[]), 0.0);
        assert_eq!(degree_of_summary(&[0, 0]), 0.0);
    }

    #[test]
    fn single_in_edge_weighs_one() {
        // r̂ = 1: 1·log2(2) / 1 = 1.
        assert!((degree_of_summary(&[1]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn same_label_hub_beats_diverse_node() {
        // The paper's motivating comparison: `human`-like node vs a node
        // with the same in-degree split over many labels.
        let hub = degree_of_summary(&[2_000_000]);
        let diverse = degree_of_summary(&[200_000; 10]);
        assert!(hub > diverse);
    }

    #[test]
    fn data_mining_style_node_has_high_weight() {
        // "data mining node has over 1000 in-edges but only 11 different
        // labels" — it should weigh close to the pure-hub case.
        let mut counts = vec![900u32];
        counts.extend(std::iter::repeat_n(10, 10));
        let dm = degree_of_summary(&counts);
        assert!(dm > degree_of_summary(&[1; 11]));
    }

    #[test]
    fn weight_is_monotone_in_count_for_single_label() {
        let mut prev = 0.0;
        for c in [1u32, 2, 10, 100, 10_000] {
            let w = degree_of_summary(&[c]);
            assert!(w > prev, "weight must grow with same-label in-degree");
            prev = w;
        }
    }

    #[test]
    fn normalize_maps_to_unit_interval_with_extremes() {
        let norm = normalize(&[2.0, 4.0, 3.0]);
        assert_eq!(norm[0], 0.0);
        assert_eq!(norm[1], 1.0);
        assert!((norm[2] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn normalize_degenerate_inputs() {
        assert!(normalize(&[]).is_empty());
        assert_eq!(normalize(&[5.0, 5.0]), vec![0.0, 0.0]);
    }
}
