//! Protocol fuzzing: arbitrary byte streams thrown at a live server must
//! always produce exactly one response line per request line — a
//! structured JSON error for garbage — and must never crash the server
//! or desynchronize the connection.

use proptest::collection::vec;
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::OnceLock;
use std::time::Duration;

/// One shared server for every fuzz case (each case opens its own
/// connection). The thread is deliberately leaked; it dies with the test
/// process.
fn server_port() -> u16 {
    static PORT: OnceLock<u16> = OnceLock::new();
    *PORT.get_or_init(|| {
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let port = probe.local_addr().unwrap().port();
        drop(probe);

        let path = std::env::temp_dir()
            .join(format!("ws-proto-{}.tsv", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let mut b = kgraph::GraphBuilder::new();
        let x = b.add_node("x", "xml");
        let q = b.add_node("q", "query language");
        let s = b.add_node("s", "sql");
        b.add_edge(x, q, "rel");
        b.add_edge(s, q, "rel");
        std::fs::write(&path, kgraph::io::to_tsv(&b.build())).unwrap();

        std::thread::spawn(move || {
            let argv: Vec<String> =
                format!("serve --graph {path} --port {port} --backend seq --workers 2")
                    .split_whitespace()
                    .map(String::from)
                    .collect();
            let args = wikisearch_cli::args::parse(&argv).unwrap();
            let mut out = Vec::new();
            let _ = wikisearch_cli::serve::serve(&args, &mut out);
        });
        for _ in 0..150 {
            if TcpStream::connect(("127.0.0.1", port)).is_ok() {
                return port;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        panic!("fuzz server never came up on port {port}");
    })
}

/// Make raw fuzz bytes into exactly one request line that expects one
/// response: strip newlines (they would split the request) and dodge the
/// one input with no response line, a well-formed `QUIT`.
fn as_request_line(mut bytes: Vec<u8>) -> Vec<u8> {
    for b in &mut bytes {
        if *b == b'\n' {
            *b = b'.';
        }
    }
    if let Ok(text) = std::str::from_utf8(&bytes) {
        if text.trim().eq_ignore_ascii_case("quit") {
            bytes.push(b'x');
        }
    }
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn every_request_line_gets_exactly_one_response_line(
        raw_lines in vec(vec(0u8..=255u8, 0..120), 1..8),
    ) {
        let port = server_port();
        let mut stream = TcpStream::connect(("127.0.0.1", port)).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());

        for raw in raw_lines {
            let request = as_request_line(raw);
            stream.write_all(&request).unwrap();
            stream.write_all(b"\n").unwrap();

            let mut response = String::new();
            reader
                .read_line(&mut response)
                .unwrap_or_else(|e| panic!("no response to {request:?}: {e}"));
            assert!(
                response.ends_with('\n'),
                "connection closed mid-response to {request:?}: {response:?}"
            );
            let response = response.trim_end();
            let valid = response == "PONG"
                || serde_json::from_str::<serde_json::Value>(response).is_ok();
            assert!(valid, "unparseable response to {request:?}: {response:?}");
        }

        // The connection survived the garbage: a real query still works.
        writeln!(stream, "QUERY xml sql").unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        assert!(response.contains("answers"), "{response}");
        writeln!(stream, "QUIT").unwrap();
    }
}
