//! `wikisearch shard-worker` — one remote shard worker process.
//!
//! A worker owns one partition of the deterministic edge-cut shard plan
//! (`central::shard::ShardPlan`) over the full dataset and serves the
//! coordinator's length-prefixed frame protocol (`central::remote`) on
//! a loopback TCP listener. Both ends load the same dataset and derive
//! the same plan from the fixed seed, so sub-graphs never travel over
//! the wire and the handshake only has to verify that the contracts
//! (shard count, node count, seed, protocol version) agree.
//!
//! Once the listener is bound the worker prints exactly one
//! `READY <addr> …` line to stdout — its parent learns both that the
//! worker is up and which ephemeral port it got (`--port 0`). With
//! `--watch-stdin true` the worker exits as soon as its stdin reaches
//! EOF: the supervisor (`serve --shard-workers N`) holds the write end
//! of that pipe, so a supervisor that dies — gracefully or not — can
//! never leak workers.

use crate::args::ParsedArgs;
use central::shard::DEFAULT_PARTITION_SEED;
use central::ShardWorker;
use std::io::{Read, Write};
use std::net::TcpListener;
use std::sync::Arc;
use wikisearch_engine::Backend;

/// `wikisearch shard-worker`: serve one shard of `--shards N` forever
/// (or until stdin EOF under `--watch-stdin true`).
pub fn shard_worker(args: &ParsedArgs, out: &mut dyn Write) -> Result<(), String> {
    args.allow_only(&["graph", "mmap", "shards", "shard-index", "port", "watch-stdin"])?;
    let shards: usize = args.get_or("shards", 0)?;
    if shards == 0 {
        return Err("--shards must be >= 1".into());
    }
    let index: usize = args
        .required("shard-index")?
        .parse()
        .map_err(|_| "--shard-index: expected a shard number".to_string())?;
    if index >= shards {
        return Err(format!("--shard-index {index} out of range for --shards {shards}"));
    }
    let port: u16 = args.get_or("port", 0)?;
    let watch_stdin: bool = args.get_or("watch-stdin", false)?;

    // Load the full dataset (heap or mmap) and cut this worker's
    // partition out of it; the source engine is dropped right after —
    // the partition is owned.
    let ws = crate::commands::open_engine(args, Backend::Sequential, 1)?;
    let worker = Arc::new(ShardWorker::new(ws.graph(), shards, index, DEFAULT_PARTITION_SEED));
    drop(ws);

    let listener = TcpListener::bind(("127.0.0.1", port))
        .map_err(|e| format!("bind 127.0.0.1:{port}: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    writeln!(out, "READY {addr} shard {index}/{shards} owned {}", worker.num_owned())
        .map_err(|e| e.to_string())?;
    out.flush().map_err(|e| e.to_string())?;

    if watch_stdin {
        // Supervision leash: stdin EOF means whoever spawned us is gone.
        std::thread::Builder::new()
            .name("stdin-watchdog".into())
            .spawn(|| {
                let mut sink = [0u8; 256];
                let mut stdin = std::io::stdin();
                loop {
                    match stdin.read(&mut sink) {
                        Ok(0) | Err(_) => std::process::exit(0),
                        Ok(_) => {}
                    }
                }
            })
            .map_err(|e| format!("spawning the stdin watchdog: {e}"))?;
    }

    worker.serve(listener);
    Ok(())
}
