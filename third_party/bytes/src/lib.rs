//! Minimal `bytes` shim: owned byte buffers plus the little-endian
//! cursor traits the workspace's binary graph format uses.

use std::ops::Deref;

/// Immutable shared byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes(std::sync::Arc<Vec<u8>>);

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes(std::sync::Arc::new(Vec::new()))
    }

    /// Copy from a slice.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(std::sync::Arc::new(data.to_vec()))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(std::sync::Arc::new(v))
    }
}

/// Growable byte buffer.
#[derive(Clone, Debug, Default)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(std::sync::Arc::new(self.0))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Read cursor over a byte source (little-endian accessors).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Current unread window.
    fn chunk(&self) -> &[u8];
    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// Write cursor over a growable byte sink (little-endian accessors).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, data: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, data: &[u8]) {
        self.extend_from_slice(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(42);
        w.put_slice(b"xy");
        let frozen = w.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.remaining(), 2);
        r.advance(1);
        assert_eq!(r.chunk(), b"y");
    }
}
