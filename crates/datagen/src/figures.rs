//! The paper's worked-example graphs as reusable fixtures.

use kgraph::{GraphBuilder, KnowledgeGraph, NodeId};

/// Fig. 1 / Fig. 4: the ten-node query-language neighborhood for the
/// keywords *XML, RDF, SQL*, with `v2` ("Query language") as the hub the
/// keyword paths converge on. Returns the graph and the per-node minimum
/// activation levels drawn in Fig. 4.
pub fn fig4_graph() -> (KnowledgeGraph, Vec<u8>) {
    let mut b = GraphBuilder::new();
    let texts: [(&str, &str); 10] = [
        ("v0", "Facebook Query Language"),
        ("v1", "SQL"),
        ("v2", "Query language"),
        ("v3", "XPath"),
        ("v4", "SPARQL query language for RDF"),
        ("v5", "RDF query language"),
        ("v6", "XPath 2"),
        ("v7", "XPath 3"),
        ("v8", "XQuery"),
        ("v9", "XML"),
    ];
    let ids: Vec<NodeId> = texts.iter().map(|(k, t)| b.add_node(k, t)).collect();
    for (s, d, label) in [
        (0usize, 2usize, "subclass of"),
        (1, 2, "instance of"),
        (3, 2, "instance of"),
        (8, 2, "instance of"),
        (4, 2, "instance of"),
        (5, 2, "instance of"),
        (4, 3, "related to"),
        (5, 3, "related to"),
        (6, 3, "version of"),
        (7, 3, "version of"),
        (9, 6, "used by"),
        (9, 7, "used by"),
        (9, 8, "used by"),
    ] {
        b.add_edge(ids[s], ids[d], label);
    }
    // Activation levels as drawn in Fig. 4.
    let activation = vec![2, 1, 4, 2, 0, 1, 0, 1, 0, 1];
    (b.build(), activation)
}

/// Fig. 2: five nodes, two BFS instances (`B0` from `v0`, `B1` from
/// `v1`/`v2`), used by the hitting level/path definitions (Examples 1–3).
pub fn fig2_graph() -> KnowledgeGraph {
    let mut b = GraphBuilder::new();
    let v0 = b.add_node("v0", "alpha");
    let v1 = b.add_node("v1", "beta");
    let v2 = b.add_node("v2", "beta two");
    let v3 = b.add_node("v3", "mid");
    let v4 = b.add_node("v4", "far");
    b.add_edge(v0, v3, "e");
    b.add_edge(v1, v3, "e");
    b.add_edge(v3, v4, "e");
    b.add_edge(v1, v4, "e");
    b.add_edge(v2, v4, "e");
    b.build()
}

/// Fig. 5: the level-cover example — *Stanford, Jeffrey, Ullman* with
/// "Jeffrey Ullman" covering two keywords and three "Jeffrey"-only
/// satellites that the strategy prunes. Returns the graph plus the ids of
/// (stanford, ullman, satellites).
pub fn fig5_graph() -> (KnowledgeGraph, NodeId, NodeId, Vec<NodeId>) {
    let mut b = GraphBuilder::new();
    let stanford = b.add_node("su", "Stanford University");
    let ullman = b.add_node("ju", "Jeffrey Ullman");
    b.add_edge(ullman, stanford, "employer");
    let mut satellites = Vec::new();
    for i in 0..3 {
        let j = b.add_node(&format!("j{i}"), &format!("Jeffrey Person{i}"));
        b.add_edge(j, stanford, "affiliation");
        satellites.push(j);
    }
    (b.build(), stanford, ullman, satellites)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_fixture_shape() {
        let (g, act) = fig4_graph();
        assert_eq!(g.num_nodes(), 10);
        assert_eq!(act.len(), 10);
        assert_eq!(g.num_directed_edges(), 13);
        g.check_invariants().unwrap();
        let v2 = g.find_node_by_key("v2").unwrap();
        assert_eq!(g.degree(v2), 6, "v2 is the convergence hub");
    }

    #[test]
    fn fig2_fixture_shape() {
        let g = fig2_graph();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_directed_edges(), 5);
    }

    #[test]
    fn fig5_fixture_shape() {
        let (g, stanford, ullman, sats) = fig5_graph();
        assert_eq!(g.degree(stanford), 4);
        assert_eq!(g.degree(ullman), 1);
        assert_eq!(sats.len(), 3);
    }
}
