//! The unified graph loader: one entry point for every on-disk format,
//! returning a [`GraphStore`] that says where the bytes live.
//!
//! Before this module existed the repo had three overlapping load paths
//! (`io` for TSV/N-Triples, `binio` for the compact binary format, serde
//! for JSON) and every consumer re-implemented the extension dispatch.
//! [`load_graph`] is now the single entry point; the CLI, the serve loop
//! and the bench harness all go through it. It also owns the zero-copy
//! path: a `.wsnap` file is memory-mapped and validated lazily
//! ([`crate::snapshot`]), every other format is parsed into heap-owned
//! columns through the builder.
//!
//! A [`GraphStore`] wraps the resulting [`KnowledgeGraph`] together with
//! its provenance: the detected [`GraphFormat`] and, for snapshots, the
//! still-open [`Snapshot`] handle so higher layers (the text index, the
//! engine) can read their own sections from the same mapping without
//! reopening the file.

use crate::error::KgraphError;
use crate::graph::KnowledgeGraph;
use crate::snapshot::{graph_from_snapshot, Snapshot};
use std::path::Path;

/// On-disk graph formats understood by [`load_graph`], detected from the
/// file extension.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphFormat {
    /// Line-oriented TSV triples (`.tsv`, `.txt`) — see [`crate::io`].
    Tsv,
    /// RDF N-Triples (`.nt`), read-only.
    NTriples,
    /// Compact length-prefixed binary (`.bin`) — see [`crate::binio`].
    Binary,
    /// Serde JSON (`.json`).
    Json,
    /// Memory-mapped zero-copy snapshot (`.wsnap`) — see
    /// [`crate::snapshot`].
    Snapshot,
}

impl GraphFormat {
    /// Detect the format of `path` from its extension.
    pub fn from_path(path: &Path) -> Result<GraphFormat, KgraphError> {
        let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
        match ext {
            "tsv" | "txt" => Ok(GraphFormat::Tsv),
            "nt" => Ok(GraphFormat::NTriples),
            "bin" => Ok(GraphFormat::Binary),
            "json" => Ok(GraphFormat::Json),
            "wsnap" => Ok(GraphFormat::Snapshot),
            other => Err(KgraphError::Parse {
                line: 0,
                message: format!(
                    "unsupported extension {other:?} (use .tsv, .txt, .nt, .bin, .json or .wsnap)"
                ),
            }),
        }
    }

    /// `true` for formats [`save_graph`] can write.
    pub fn is_writable(self) -> bool {
        !matches!(self, GraphFormat::NTriples)
    }
}

/// A loaded graph plus its provenance: which format it came from and,
/// for `.wsnap` files, the open snapshot handle sharing the mapping.
#[derive(Debug)]
pub struct GraphStore {
    graph: KnowledgeGraph,
    format: GraphFormat,
    snapshot: Option<Snapshot>,
}

impl GraphStore {
    /// Wrap an already-built heap graph (tests, programmatic callers).
    pub fn from_graph(graph: KnowledgeGraph) -> GraphStore {
        GraphStore { graph, format: GraphFormat::Binary, snapshot: None }
    }

    /// The loaded graph.
    pub fn graph(&self) -> &KnowledgeGraph {
        &self.graph
    }

    /// Consume the store, keeping only the graph. For a snapshot-backed
    /// store the mapping stays alive through the graph's columns even
    /// after the [`Snapshot`] handle is dropped.
    pub fn into_graph(self) -> KnowledgeGraph {
        self.graph
    }

    /// The format the graph was loaded from.
    pub fn format(&self) -> GraphFormat {
        self.format
    }

    /// The open snapshot handle, when the graph is `.wsnap`-backed.
    /// Higher layers use it to read their own sections (the inverted
    /// index, engine metadata) from the same mapping.
    pub fn snapshot(&self) -> Option<&Snapshot> {
        self.snapshot.as_ref()
    }

    /// `true` when the graph's columns point into a memory-mapped file
    /// rather than the heap.
    pub fn is_memory_mapped(&self) -> bool {
        self.graph.is_memory_mapped()
    }
}

/// Load a graph from `path`, dispatching on extension. The single load
/// entry point for CLIs, servers and benches.
pub fn load_graph(path: &Path) -> Result<GraphStore, KgraphError> {
    let format = GraphFormat::from_path(path)?;
    if format == GraphFormat::Snapshot {
        let snapshot = Snapshot::open(path)?;
        let graph = graph_from_snapshot(&snapshot)?;
        return Ok(GraphStore { graph, format, snapshot: Some(snapshot) });
    }
    let data = std::fs::read(path)?;
    let graph = match format {
        GraphFormat::Binary => crate::binio::from_bytes(&data)?,
        GraphFormat::Tsv => crate::io::from_tsv(&String::from_utf8(data).map_err(utf8_err)?)?,
        GraphFormat::NTriples => {
            crate::io::from_ntriples(&String::from_utf8(data).map_err(utf8_err)?)?
        }
        GraphFormat::Json => serde_json::from_str(&String::from_utf8(data).map_err(utf8_err)?)
            .map_err(|e| KgraphError::Json(e.to_string()))?,
        GraphFormat::Snapshot => unreachable!("handled above"),
    };
    Ok(GraphStore { graph, format, snapshot: None })
}

/// Write `graph` to `path` in the format its extension names. The
/// `.wsnap` writer here emits graph sections only; use the engine's
/// `compile_snapshot` to also embed the text index and metadata.
pub fn save_graph(graph: &KnowledgeGraph, path: &Path) -> Result<(), KgraphError> {
    let format = GraphFormat::from_path(path)?;
    match format {
        GraphFormat::Binary => std::fs::write(path, crate::binio::to_bytes(graph))?,
        GraphFormat::Tsv => std::fs::write(path, crate::io::to_tsv(graph))?,
        GraphFormat::Json => std::fs::write(
            path,
            serde_json::to_string(graph).map_err(|e| KgraphError::Json(e.to_string()))?,
        )?,
        GraphFormat::Snapshot => {
            let mut w = crate::snapshot::SnapshotWriter::create(path)?;
            crate::snapshot::write_graph_sections(&mut w, graph)?;
            w.finish()?;
        }
        GraphFormat::NTriples => {
            return Err(KgraphError::Parse {
                line: 0,
                message: "N-Triples is read-only (write .tsv, .bin, .json or .wsnap)".into(),
            })
        }
    }
    Ok(())
}

fn utf8_err(e: std::string::FromUtf8Error) -> KgraphError {
    KgraphError::Parse { line: 0, message: format!("invalid UTF-8: {e}") }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("kgraph-store-{}-{name}", std::process::id()))
    }

    fn sample() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let x = b.add_node("Q1", "XML schema");
        let y = b.add_node("Q2", "RDF");
        b.add_edge(x, y, "related to");
        b.build()
    }

    #[test]
    fn format_detection_by_extension() {
        assert_eq!(GraphFormat::from_path(Path::new("g.tsv")).unwrap(), GraphFormat::Tsv);
        assert_eq!(GraphFormat::from_path(Path::new("g.txt")).unwrap(), GraphFormat::Tsv);
        assert_eq!(GraphFormat::from_path(Path::new("g.nt")).unwrap(), GraphFormat::NTriples);
        assert_eq!(GraphFormat::from_path(Path::new("g.bin")).unwrap(), GraphFormat::Binary);
        assert_eq!(GraphFormat::from_path(Path::new("g.json")).unwrap(), GraphFormat::Json);
        assert_eq!(GraphFormat::from_path(Path::new("g.wsnap")).unwrap(), GraphFormat::Snapshot);
        assert!(GraphFormat::from_path(Path::new("g.parquet")).is_err());
        assert!(!GraphFormat::from_path(Path::new("g.nt")).unwrap().is_writable());
    }

    #[test]
    fn every_writable_format_round_trips() {
        let g = sample();
        for ext in ["tsv", "bin", "json", "wsnap"] {
            let path = tmp(&format!("rt.{ext}"));
            save_graph(&g, &path).unwrap();
            let store = load_graph(&path).unwrap();
            assert_eq!(store.graph().num_nodes(), g.num_nodes(), "{ext}");
            assert_eq!(store.graph().num_directed_edges(), g.num_directed_edges(), "{ext}");
            assert_eq!(store.is_memory_mapped(), ext == "wsnap", "{ext}");
            assert_eq!(store.snapshot().is_some(), ext == "wsnap", "{ext}");
            store.graph().check_invariants().unwrap();
            let _ = std::fs::remove_file(path);
        }
    }

    #[test]
    fn snapshot_store_exposes_the_open_handle() {
        let path = tmp("handle.wsnap");
        save_graph(&sample(), &path).unwrap();
        let store = load_graph(&path).unwrap();
        let snap = store.snapshot().unwrap();
        snap.verify_checksums().unwrap();
        assert!(snap.section_ids().contains(&crate::snapshot::SEC_OFFSETS));
        // The graph outlives the dropped handle: the Arc keeps the map.
        let g = store.into_graph();
        assert_eq!(g.node_key(crate::NodeId(0)), "Q1");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn ntriples_writes_are_refused() {
        let err = save_graph(&sample(), Path::new("/tmp/x.nt")).unwrap_err();
        assert!(err.to_string().contains("read-only"));
    }

    #[test]
    fn missing_file_is_an_io_error() {
        assert!(load_graph(Path::new("/does/not/exist.tsv")).is_err());
    }
}
