//! Service-level throughput: queries/sec vs number of concurrent
//! clients against **one** shared `WikiSearch` engine.
//!
//! The paper's efficiency experiments (Exp-1..4) measure one query at a
//! time; its WikiSearch deployment, however, is a hosted multi-user
//! service. This experiment measures that axis: `C` clients — each a
//! thread holding the same `Arc<WikiSearch>` — fire `Q` queries apiece
//! as fast as the engine answers them, for `C` in `WIKISEARCH_CLIENTS`
//! (default `1,2,4,8`). Because every search checks its state out of the
//! engine's session pool instead of serializing on a process-wide lock,
//! queries/sec should rise with the client count until the cores are
//! saturated; the pre-pool architecture flatlines at the 1-client rate.
//!
//! Two backends are swept: the sequential reference (pure inter-query
//! scaling — every added client is new work on a new core) and CPU-Par
//! with 2 threads (inter-query concurrency composed with intra-query
//! parallelism, the `serve --workers N` configuration).
//!
//! A third sweep runs the **shards axis**: the same volley through the
//! in-process scatter-gather coordinator (`--shards {1,2,4}`) at equal
//! worker counts, reporting qps and p95 relative to the unsharded
//! baseline (written to `BENCH_shards.json`).
//!
//! A fourth sweep runs the **batching axis**: Zipf-skewed all-miss
//! traffic (no result cache, so popularity skew reaches the engine)
//! through the micro-batcher at collection windows {0, 100 µs, 1 ms} ×
//! {1, 8, 64} clients. Concurrent queries that land in one window fuse
//! into a single multi-query sweep whose union frontier touches each
//! node once for the whole batch, so qps at high client counts should
//! rise well above the window-0 baseline (written to `BENCH_batch.json`).
//!
//! A fifth sweep runs the **remote axis**: the same volley driven over
//! a fleet of TCP shard workers (`--shard-workers` equivalent, workers
//! in-process on real loopback sockets) at fleet sizes {1,2,4}, each
//! point paired with the in-process sharded engine at the same shard
//! count — so the reported ratio is exactly the price of the wire:
//! framing, JSON payloads, per-round RPCs and the supervision layer
//! (written to `BENCH_remote.json`).
//!
//! A sixth sweep runs the **telemetry axis**: the 8-client volley with
//! the full observability surface armed — per-query fleet-wide qid
//! issuance, the recent-query ring, and a background sampler snapshotting
//! the metrics registry at 10× the serve default cadence — interleaved
//! A/B against a bare engine. The guard asserts telemetry costs < 2% qps
//! (written to `BENCH_telemetry.json`; `WIKISEARCH_ENFORCE_GUARDS=1`
//! turns a guard failure into a hard bench failure for CI).
//!
//! `WIKISEARCH_AXIS={clients,shards,batch,remote,telemetry}` restricts a
//! run to one axis (default: all).

use crate::{client_sweep, queries_per_point};
use central::{HistogramSnapshot, LogHistogram, QueryBudget, TelemetrySample};
use datagen::synthetic::SyntheticConfig;
use datagen::QueryWorkload;
use eval::runner::ExperimentSink;
use eval::Table;
use serde_json::json;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use wikisearch_engine::{Backend, WikiSearch};

/// `WIKISEARCH_AXIS` filter: `true` when the named axis should run.
fn axis_wanted(name: &str) -> bool {
    match std::env::var("WIKISEARCH_AXIS") {
        Ok(axis) => axis == name,
        Err(_) => true,
    }
}

/// One measured datapoint.
struct Point {
    backend: &'static str,
    clients: usize,
    total_queries: usize,
    wall_ms: f64,
    qps: f64,
    sessions: usize,
    /// Per-query latency distribution across all clients of the volley.
    latency_us: HistogramSnapshot,
}

/// Run `clients` threads × `per_client` queries against `ws`, returning
/// the wall-clock of the whole volley and the per-query latency
/// histogram (every client records into one shared lock-free
/// `LogHistogram`, so tail percentiles cover the whole volley, not one
/// lucky thread).
fn volley(
    ws: &Arc<WikiSearch>,
    queries: &[String],
    clients: usize,
    per_client: usize,
) -> (f64, HistogramSnapshot) {
    let latency = LogHistogram::new();
    let t = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..clients {
            let ws = Arc::clone(ws);
            let latency = &latency;
            scope.spawn(move || {
                // Each client walks the shared query list from its own
                // offset, so concurrent clients are rarely on the same
                // query at the same moment.
                for j in 0..per_client {
                    let q = &queries[(client + j) % queries.len()];
                    let started = Instant::now();
                    let result = ws.search(q);
                    let us = started.elapsed().as_micros();
                    latency.record(u64::try_from(us).unwrap_or(u64::MAX));
                    std::hint::black_box(result.answers.len());
                }
            });
        }
    });
    (t.elapsed().as_secs_f64(), latency.snapshot())
}

/// Run the throughput sweep.
pub fn run() -> serde_json::Value {
    let sweep = client_sweep();
    let per_client = queries_per_point().max(10);
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!("== throughput: C concurrent clients x {per_client} queries, one shared engine ==");
    println!("   clients {sweep:?} | dataset wiki2017-sim | {cores} core(s) available");
    if cores < 2 {
        println!("   note: single-core runner — expect flat qps; scaling needs >= 2 cores");
    }

    let ds = SyntheticConfig::wiki2017_sim().generate();
    let name = ds.config.name.clone();
    let mut workload = QueryWorkload::new(6021);
    let queries: Vec<String> = workload.batch(4, 16);

    let mut points: Vec<Point> = Vec::new();
    let backend_sweep: &[(&'static str, Backend)] = if axis_wanted("clients") {
        &[("Seq", Backend::Sequential), ("CPU-Par(2)", Backend::ParCpu(2))]
    } else {
        &[]
    };
    for &(backend_name, backend) in backend_sweep {
        let ws = Arc::new(WikiSearch::build_with(ds.graph.clone(), backend));
        // Warmup: populate the session pool up to the largest client
        // count so measured volleys are allocation-free.
        let max_clients = sweep.iter().copied().max().unwrap_or(1);
        volley(&ws, &queries, max_clients, 2);
        for &clients in &sweep {
            let (wall, latency_us) = volley(&ws, &queries, clients, per_client);
            let total_queries = clients * per_client;
            points.push(Point {
                backend: backend_name,
                clients,
                total_queries,
                wall_ms: wall * 1e3,
                qps: total_queries as f64 / wall,
                sessions: ws.session_pool().sessions_created(),
                latency_us,
            });
        }
    }

    let mut table = Table::new(vec![
        "backend", "clients", "queries", "wall(ms)", "qps", "p50(ms)", "p95(ms)", "p99(ms)",
        "sessions",
    ]);
    let ms = |us: u64| us as f64 / 1e3;
    for p in &points {
        table.row(vec![
            p.backend.to_string(),
            p.clients.to_string(),
            p.total_queries.to_string(),
            format!("{:.1}", p.wall_ms),
            format!("{:.1}", p.qps),
            format!("{:.2}", ms(p.latency_us.percentile(0.50))),
            format!("{:.2}", ms(p.latency_us.percentile(0.95))),
            format!("{:.2}", ms(p.latency_us.percentile(0.99))),
            p.sessions.to_string(),
        ]);
    }
    table.print();
    for backend in ["Seq", "CPU-Par(2)"] {
        let qps_at = |c: usize| {
            points.iter().find(|p| p.backend == backend && p.clients == c).map(|p| p.qps)
        };
        if let (Some(one), Some(four)) = (qps_at(1), qps_at(4)) {
            println!("{backend}: qps x{:.2} going from 1 -> 4 clients", four / one);
        }
    }

    if axis_wanted("shards") {
        let _ = run_shards(&ds.graph, &name, &queries, per_client, cores);
    }
    if axis_wanted("batch") {
        let _ = run_batch(&ds.graph, &name, per_client, cores);
    }
    if axis_wanted("remote") {
        let _ = run_remote(per_client, cores);
    }
    if axis_wanted("telemetry") {
        let _ = run_telemetry(&ds.graph, &name, &queries, per_client, cores);
    }

    let record = json!({
        "experiment": "throughput",
        "dataset": name,
        "cores": cores,
        "queries_per_client": per_client,
        "points": points
            .iter()
            .map(|p| {
                json!({
                    "backend": p.backend,
                    "clients": p.clients,
                    "total_queries": p.total_queries,
                    "wall_ms": p.wall_ms,
                    "qps": p.qps,
                    "sessions_created": p.sessions,
                    "latency_p50_ms": ms(p.latency_us.percentile(0.50)),
                    "latency_p95_ms": ms(p.latency_us.percentile(0.95)),
                    "latency_p99_ms": ms(p.latency_us.percentile(0.99)),
                    "latency_mean_ms": p.latency_us.mean() / 1e3,
                })
            })
            .collect::<Vec<_>>(),
    });
    if let Ok(path) = ExperimentSink::new().write("throughput", &record) {
        println!("json: {}", path.display());
    }
    record
}

/// The shards axis in [`SHARD_SWEEP`].
const SHARD_SWEEP: [usize; 3] = [1, 2, 4];

/// The shards axis: the same client volley through the scatter-gather
/// coordinator at every shard count, with **equal worker counts** —
/// CPU-Par(2) kernels and 4 concurrent clients in every configuration,
/// so the only variable is how many shards the graph is cut into.
/// `shards = 1` is the monolithic baseline (the facade serves it without
/// a coordinator); each point reports its qps and p95 relative to that
/// baseline. Answers are byte-identical across the axis (pinned by the
/// shard-invariance suite), so this measures pure coordination overhead
/// vs. partitioned-locality gain. Writes `BENCH_shards.json`.
fn run_shards(
    graph: &kgraph::KnowledgeGraph,
    dataset: &str,
    queries: &[String],
    per_client: usize,
    cores: usize,
) -> serde_json::Value {
    let clients = 4usize;
    println!(
        "== throughput/shards: {clients} clients x {per_client} queries, \
         CPU-Par(2), shards {SHARD_SWEEP:?} =="
    );

    struct ShardPoint {
        shards: usize,
        wall_ms: f64,
        qps: f64,
        latency_us: HistogramSnapshot,
        rounds: u64,
        notifications: u64,
    }
    let mut points: Vec<ShardPoint> = Vec::new();
    for &shards in &SHARD_SWEEP {
        let ws = Arc::new(WikiSearch::open_sharded(graph.clone(), Backend::ParCpu(2), shards));
        volley(&ws, queries, clients, 2); // warmup: pools + page cache
        let (wall, latency_us) = volley(&ws, queries, clients, per_client);
        let coordinator = ws.shard_stats();
        points.push(ShardPoint {
            shards,
            wall_ms: wall * 1e3,
            qps: (clients * per_client) as f64 / wall,
            latency_us,
            rounds: coordinator.as_ref().map_or(0, |s| s.rounds),
            notifications: coordinator.as_ref().map_or(0, |s| s.notifications),
        });
    }

    let ms = |us: u64| us as f64 / 1e3;
    let base_qps = points[0].qps;
    let base_p95 = ms(points[0].latency_us.percentile(0.95));
    let mut table = Table::new(vec![
        "shards",
        "wall(ms)",
        "qps",
        "qps/base",
        "p50(ms)",
        "p95(ms)",
        "p95/base",
        "rounds",
        "notifications",
    ]);
    for p in &points {
        let p95 = ms(p.latency_us.percentile(0.95));
        table.row(vec![
            p.shards.to_string(),
            format!("{:.1}", p.wall_ms),
            format!("{:.1}", p.qps),
            format!("{:.2}", p.qps / base_qps),
            format!("{:.2}", ms(p.latency_us.percentile(0.50))),
            format!("{:.2}", p95),
            if base_p95 > 0.0 {
                format!("{:.2}", p95 / base_p95)
            } else {
                "-".into()
            },
            p.rounds.to_string(),
            p.notifications.to_string(),
        ]);
    }
    table.print();

    let record = json!({
        "experiment": "shards",
        "dataset": dataset,
        "cores": cores,
        "backend": "CPU-Par(2)",
        "clients": clients,
        "queries_per_client": per_client,
        "points": points
            .iter()
            .map(|p| {
                let p95 = ms(p.latency_us.percentile(0.95));
                json!({
                    "shards": p.shards,
                    "wall_ms": p.wall_ms,
                    "qps": p.qps,
                    "qps_vs_unsharded": p.qps / base_qps,
                    "latency_p50_ms": ms(p.latency_us.percentile(0.50)),
                    "latency_p95_ms": p95,
                    "p95_vs_unsharded": if base_p95 > 0.0 { p95 / base_p95 } else { 1.0 },
                    "latency_p99_ms": ms(p.latency_us.percentile(0.99)),
                    "exchange_rounds": p.rounds,
                    "boundary_notifications": p.notifications,
                })
            })
            .collect::<Vec<_>>(),
    });
    if let Ok(path) = ExperimentSink::new().write("BENCH_shards", &record) {
        println!("json: {}", path.display());
    }
    record
}

/// The remote axis in [`run_remote`]: TCP worker fleet sizes.
const REMOTE_SWEEP: [usize; 3] = [1, 2, 4];

/// The remote axis: the same client volley driven over a fleet of TCP
/// shard workers, each fleet size paired with the **in-process sharded
/// engine at the same shard count** — identical partitions, identical
/// kernels, identical answers (pinned by the remote-equivalence suite)
/// — so `qps_vs_inprocess` isolates exactly what the wire costs:
/// framing, JSON payloads, one RPC per shard per exchange round, and
/// the retry/breaker bookkeeping. Workers run in-process threads on
/// real loopback sockets (`ShardWorker::spawn_local`), which measures
/// the full protocol path without process-spawn noise.
///
/// This axis runs on a 10%-scale graph: every exchange round ships the
/// full hitting-level broadcast as a JSON payload, so wire cost grows
/// with node count and the full wiki2017-sim takes seconds per query —
/// the *ratio* is the measurement, and it needs both twins on the same
/// graph, not a big one. Writes `BENCH_remote.json`.
fn run_remote(per_client: usize, cores: usize) -> serde_json::Value {
    let clients = 4usize;
    let mut cfg = SyntheticConfig::wiki2017_sim();
    cfg.name += "-10pc";
    cfg.num_entities /= 10;
    let ds = cfg.generate();
    let graph = &ds.graph;
    let dataset = ds.config.name.as_str();
    let mut workload = QueryWorkload::new(6021);
    let queries: Vec<String> = workload.batch(4, 16);
    let queries = queries.as_slice();
    println!(
        "== throughput/remote: {clients} clients x {per_client} queries, \
         CPU-Par(2), dataset {dataset}, TCP worker fleets {REMOTE_SWEEP:?} =="
    );

    struct RemotePoint {
        shards: usize,
        wall_ms: f64,
        qps: f64,
        inprocess_qps: f64,
        latency_us: HistogramSnapshot,
        inprocess_p95_us: u64,
        rpcs: u64,
        rounds: u64,
        retries: u64,
    }
    let mut points: Vec<RemotePoint> = Vec::new();
    for &shards in &REMOTE_SWEEP {
        // The in-process twin: same partition count, same kernels.
        let inproc = Arc::new(WikiSearch::open_sharded(graph.clone(), Backend::ParCpu(2), shards));
        volley(&inproc, queries, clients, 2);
        let (in_wall, in_latency) = volley(&inproc, queries, clients, per_client);

        let addrs: Vec<std::net::SocketAddr> = (0..shards)
            .map(|i| {
                central::ShardWorker::spawn_local(
                    graph,
                    shards,
                    i,
                    central::shard::DEFAULT_PARTITION_SEED,
                )
            })
            .collect();
        let mut ws = WikiSearch::build_with(graph.clone(), Backend::ParCpu(2));
        ws.set_remote_shards(
            shards,
            Arc::new(central::StaticAddrs(addrs)),
            central::RemoteOptions::default(),
        );
        let ws = Arc::new(ws);
        volley(&ws, queries, clients, 2); // warmup: dials + pools + page cache
        let (wall, latency_us) = volley(&ws, queries, clients, per_client);
        let remote = ws.remote_stats().expect("remote coordinator armed");
        points.push(RemotePoint {
            shards,
            wall_ms: wall * 1e3,
            qps: (clients * per_client) as f64 / wall,
            inprocess_qps: (clients * per_client) as f64 / in_wall,
            latency_us,
            inprocess_p95_us: in_latency.percentile(0.95),
            rpcs: remote.rpcs,
            rounds: remote.rounds,
            retries: remote.retries,
        });
    }

    let ms = |us: u64| us as f64 / 1e3;
    let mut table = Table::new(vec![
        "fleet",
        "wall(ms)",
        "qps",
        "qps/in-process",
        "p50(ms)",
        "p95(ms)",
        "p95/in-process",
        "rpcs",
        "rounds",
        "retries",
    ]);
    for p in &points {
        let p95 = ms(p.latency_us.percentile(0.95));
        let in_p95 = ms(p.inprocess_p95_us);
        table.row(vec![
            p.shards.to_string(),
            format!("{:.1}", p.wall_ms),
            format!("{:.1}", p.qps),
            format!("{:.2}", p.qps / p.inprocess_qps),
            format!("{:.2}", ms(p.latency_us.percentile(0.50))),
            format!("{:.2}", p95),
            if in_p95 > 0.0 {
                format!("{:.2}", p95 / in_p95)
            } else {
                "-".into()
            },
            p.rpcs.to_string(),
            p.rounds.to_string(),
            p.retries.to_string(),
        ]);
    }
    table.print();

    let record = json!({
        "experiment": "remote",
        "dataset": dataset,
        "cores": cores,
        "backend": "CPU-Par(2)",
        "clients": clients,
        "queries_per_client": per_client,
        "points": points
            .iter()
            .map(|p| {
                let p95 = ms(p.latency_us.percentile(0.95));
                let in_p95 = ms(p.inprocess_p95_us);
                json!({
                    "fleet": p.shards,
                    "wall_ms": p.wall_ms,
                    "qps": p.qps,
                    "inprocess_qps": p.inprocess_qps,
                    "qps_vs_inprocess": p.qps / p.inprocess_qps,
                    "latency_p50_ms": ms(p.latency_us.percentile(0.50)),
                    "latency_p95_ms": p95,
                    "p95_vs_inprocess": if in_p95 > 0.0 { p95 / in_p95 } else { 1.0 },
                    "latency_p99_ms": ms(p.latency_us.percentile(0.99)),
                    "rpcs": p.rpcs,
                    "exchange_rounds": p.rounds,
                    "retries": p.retries,
                })
            })
            .collect::<Vec<_>>(),
    });
    if let Ok(path) = ExperimentSink::new().write("BENCH_remote", &record) {
        println!("json: {}", path.display());
    }
    record
}

/// The batching axis: collection windows × client counts.
const BATCH_WINDOWS_US: [u64; 3] = [0, 100, 1_000];
const BATCH_CLIENTS: [usize; 3] = [1, 8, 64];

/// Expand a distinct-query pool into a Zipf-popularity traffic list
/// (rank `r` drawn with weight `1/(r+1)`) using a seeded LCG, so
/// concurrent clients replay the skew a shared public endpoint sees.
/// With the result cache off, every one of these is an engine miss.
fn zipf_traffic(pool: &[String], len: usize, seed: u64) -> Vec<String> {
    let weights: Vec<f64> = (0..pool.len()).map(|r| 1.0 / (r as f64 + 1.0)).collect();
    let total: f64 = weights.iter().sum();
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = (state >> 11) as f64 / (1u64 << 53) as f64 * total;
            let mut acc = 0.0;
            for (i, w) in weights.iter().enumerate() {
                acc += w;
                if u <= acc {
                    return pool[i].clone();
                }
            }
            pool[pool.len() - 1].clone()
        })
        .collect()
}

/// The batching axis: Zipf-skewed all-miss traffic through the engine's
/// micro-batcher (`--batch-window-us` equivalent) at every window ×
/// client combination. Window 0 at the same client count is the
/// unbatched baseline each point's `qps_vs_unbatched` is relative to.
/// Answers are byte-identical across the axis (pinned by the
/// batch-equivalence suite), so this measures pure fusion gain vs.
/// collection-window latency cost. Writes `BENCH_batch.json`.
fn run_batch(
    graph: &kgraph::KnowledgeGraph,
    dataset: &str,
    per_client: usize,
    cores: usize,
) -> serde_json::Value {
    println!(
        "== throughput/batch: Zipf-miss traffic, Seq kernels, \
         windows {BATCH_WINDOWS_US:?}us x clients {BATCH_CLIENTS:?} =="
    );
    let mut workload = QueryWorkload::new(7031);
    let pool = workload.batch(4, 16);
    let traffic = zipf_traffic(&pool, 256, 0x5eed);

    struct BatchPoint {
        window_us: u64,
        clients: usize,
        wall_ms: f64,
        qps: f64,
        latency_us: HistogramSnapshot,
        batches: u64,
        fused_queries: u64,
    }
    let mut points: Vec<BatchPoint> = Vec::new();
    for &window_us in &BATCH_WINDOWS_US {
        for &clients in &BATCH_CLIENTS {
            let mut ws = WikiSearch::build_with(graph.clone(), Backend::Sequential);
            ws.set_batching(std::time::Duration::from_micros(window_us), central::MAX_BATCH_LANES);
            let ws = Arc::new(ws);
            volley(&ws, &traffic, clients, 2); // warmup: pools + page cache
            let before = ws.batch_stats();
            let (wall, latency_us) = volley(&ws, &traffic, clients, per_client);
            let after = ws.batch_stats();
            let delta = |f: fn(&central::BatchStats) -> u64| {
                after.as_ref().map_or(0, f) - before.as_ref().map_or(0, f)
            };
            points.push(BatchPoint {
                window_us,
                clients,
                wall_ms: wall * 1e3,
                qps: (clients * per_client) as f64 / wall,
                latency_us,
                batches: delta(|b| b.batches),
                fused_queries: delta(|b| b.queries),
            });
        }
    }

    let ms = |us: u64| us as f64 / 1e3;
    let base_qps = |clients: usize| {
        points
            .iter()
            .find(|p| p.window_us == 0 && p.clients == clients)
            .map_or(1.0, |p| p.qps)
    };
    let mut table = Table::new(vec![
        "window(us)",
        "clients",
        "wall(ms)",
        "qps",
        "qps/unbatched",
        "p50(ms)",
        "p95(ms)",
        "batches",
        "mean size",
    ]);
    for p in &points {
        let mean_size = if p.batches > 0 {
            p.fused_queries as f64 / p.batches as f64
        } else {
            1.0
        };
        table.row(vec![
            p.window_us.to_string(),
            p.clients.to_string(),
            format!("{:.1}", p.wall_ms),
            format!("{:.1}", p.qps),
            format!("{:.2}", p.qps / base_qps(p.clients)),
            format!("{:.2}", ms(p.latency_us.percentile(0.50))),
            format!("{:.2}", ms(p.latency_us.percentile(0.95))),
            p.batches.to_string(),
            format!("{mean_size:.1}"),
        ]);
    }
    table.print();
    for &w in &BATCH_WINDOWS_US[1..] {
        if let Some(p) = points.iter().find(|p| p.window_us == w && p.clients == 64) {
            println!("window {w}us: qps x{:.2} at 64 clients", p.qps / base_qps(64));
        }
    }

    let record = json!({
        "experiment": "batch",
        "dataset": dataset,
        "cores": cores,
        "backend": "Seq",
        "max_batch": central::MAX_BATCH_LANES,
        "queries_per_client": per_client,
        "distinct_queries": pool.len(),
        "points": points
            .iter()
            .map(|p| {
                json!({
                    "window_us": p.window_us,
                    "clients": p.clients,
                    "wall_ms": p.wall_ms,
                    "qps": p.qps,
                    "qps_vs_unbatched": p.qps / base_qps(p.clients),
                    "latency_p50_ms": ms(p.latency_us.percentile(0.50)),
                    "latency_p95_ms": ms(p.latency_us.percentile(0.95)),
                    "latency_p99_ms": ms(p.latency_us.percentile(0.99)),
                    "batches": p.batches,
                    "fused_queries": p.fused_queries,
                    "mean_batch_size":
                        if p.batches > 0 { p.fused_queries as f64 / p.batches as f64 } else { 1.0 },
                })
            })
            .collect::<Vec<_>>(),
    });
    if let Ok(path) = ExperimentSink::new().write("BENCH_batch", &record) {
        println!("json: {}", path.display());
    }
    record
}

/// The telemetry axis: the 8-client point, sampler cadence (10× the
/// serve default of 1000 ms, so the guard over-reports the shipped
/// cost — but not 100×, which on a single-core runner turns the
/// sampler into a compute rival rather than an observer), A/B
/// repetitions, and the guard floor (telemetry-on qps must stay within
/// 2% of telemetry-off).
const TELEMETRY_CLIENTS: usize = 8;
const TELEMETRY_SAMPLE_MS: u64 = 100;
const TELEMETRY_REPS: usize = 3;
const TELEMETRY_GUARD_MIN_RATIO: f64 = 0.98;

/// [`volley`] with the telemetry surface in the loop: every query draws
/// a fleet-wide qid and runs through the tagged entry point (feeding
/// the recent-query ring), and each completion bumps the shared
/// `served` counter the background sampler snapshots.
fn volley_tagged(
    ws: &Arc<WikiSearch>,
    queries: &[String],
    clients: usize,
    per_client: usize,
    served: &Arc<AtomicU64>,
) -> (f64, HistogramSnapshot) {
    let latency = LogHistogram::new();
    let params = ws.params().clone();
    let budget = QueryBudget::unlimited();
    let t = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..clients {
            let ws = Arc::clone(ws);
            let served = Arc::clone(served);
            let (latency, params, budget) = (&latency, &params, &budget);
            scope.spawn(move || {
                for j in 0..per_client {
                    let q = &queries[(client + j) % queries.len()];
                    let qid = ws.issue_query_id();
                    let started = Instant::now();
                    let result = ws.try_search_with_params_tagged(q, params, budget, qid);
                    let us = started.elapsed().as_micros();
                    latency.record(u64::try_from(us).unwrap_or(u64::MAX));
                    served.fetch_add(1, Ordering::Relaxed);
                    std::hint::black_box(result.map_or(0, |r| r.answers.len()));
                }
            });
        }
    });
    (t.elapsed().as_secs_f64(), latency.snapshot())
}

/// The telemetry axis: the same 8-client volley on two engines over the
/// same graph — one bare, one with the full always-on observability
/// surface armed (fleet-wide qid issuance per query, the recent-query
/// ring behind `TOP`'s `slowest_recent`, and a background sampler
/// thread snapshotting the whole metrics registry every
/// [`TELEMETRY_SAMPLE_MS`] ms, 10× the serve default cadence). Arms
/// are interleaved A/B for [`TELEMETRY_REPS`] rounds and compared
/// best-of, so a one-off scheduler hiccup cannot fail the guard; the
/// guard then asserts the telemetry-on rate stays within 2% of bare
/// ([`TELEMETRY_GUARD_MIN_RATIO`]). Tracing stays off in both arms —
/// that is the point: this is the tax every query pays, not the opt-in
/// EXPLAIN path. Writes `BENCH_telemetry.json`; with
/// `WIKISEARCH_ENFORCE_GUARDS=1` a guard failure panics the bench.
fn run_telemetry(
    graph: &kgraph::KnowledgeGraph,
    dataset: &str,
    queries: &[String],
    per_client: usize,
    cores: usize,
) -> serde_json::Value {
    let clients = TELEMETRY_CLIENTS;
    println!(
        "== throughput/telemetry: {clients} clients x {per_client} queries, Seq, \
         sampler every {TELEMETRY_SAMPLE_MS}ms vs off, best of {TELEMETRY_REPS} =="
    );

    let ws_off = Arc::new(WikiSearch::build_with(graph.clone(), Backend::Sequential));
    let mut ws_on = WikiSearch::build_with(graph.clone(), Backend::Sequential);
    ws_on.set_telemetry(TELEMETRY_SAMPLE_MS, 512);
    let ws_on = Arc::new(ws_on);

    // The background sampler, exactly serve's shape: snapshot the full
    // registry + served count into the ring at a fixed cadence, for the
    // whole lifetime of the measured volleys.
    let stop = Arc::new(AtomicBool::new(false));
    let served = Arc::new(AtomicU64::new(0));
    let sampler = {
        let (ws, stop, served) = (Arc::clone(&ws_on), Arc::clone(&stop), Arc::clone(&served));
        std::thread::spawn(move || {
            let start = Instant::now();
            while !stop.load(Ordering::Relaxed) {
                ws.telemetry().record_sample(&TelemetrySample {
                    t_us: u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX),
                    served: served.load(Ordering::Relaxed),
                    snapshot: ws.metrics_snapshot(),
                });
                std::thread::sleep(Duration::from_millis(TELEMETRY_SAMPLE_MS));
            }
        })
    };

    // Warmup both arms (pools + page cache), then interleave A/B reps.
    volley(&ws_off, queries, clients, 2);
    volley_tagged(&ws_on, queries, clients, clients.min(per_client), &served);
    struct Rep {
        off_qps: f64,
        on_qps: f64,
        off_p95_us: u64,
        on_p95_us: u64,
    }
    let total = clients * per_client;
    let mut reps: Vec<Rep> = Vec::new();
    for _ in 0..TELEMETRY_REPS {
        let (off_wall, off_latency) = volley(&ws_off, queries, clients, per_client);
        let (on_wall, on_latency) = volley_tagged(&ws_on, queries, clients, per_client, &served);
        reps.push(Rep {
            off_qps: total as f64 / off_wall,
            on_qps: total as f64 / on_wall,
            off_p95_us: off_latency.percentile(0.95),
            on_p95_us: on_latency.percentile(0.95),
        });
    }
    stop.store(true, Ordering::Relaxed);
    sampler.join().expect("sampler thread");

    // The observed engine really was observed — otherwise the guard
    // would be measuring nothing.
    let samples = ws_on.telemetry().samples();
    let qids = ws_on.query_ids_issued();
    assert!(samples > 0, "sampler never recorded");
    assert!(qids >= total as u64, "tagged volleys issued {qids} qids, expected >= {total}");

    let ms = |us: u64| us as f64 / 1e3;
    let mut table =
        Table::new(vec!["rep", "off qps", "on qps", "on/off", "off p95(ms)", "on p95(ms)"]);
    for (i, r) in reps.iter().enumerate() {
        table.row(vec![
            (i + 1).to_string(),
            format!("{:.1}", r.off_qps),
            format!("{:.1}", r.on_qps),
            format!("{:.3}", r.on_qps / r.off_qps),
            format!("{:.2}", ms(r.off_p95_us)),
            format!("{:.2}", ms(r.on_p95_us)),
        ]);
    }
    table.print();

    let best_off = reps.iter().map(|r| r.off_qps).fold(0.0, f64::max);
    let best_on = reps.iter().map(|r| r.on_qps).fold(0.0, f64::max);
    let ratio = best_on / best_off;
    let pass = ratio >= TELEMETRY_GUARD_MIN_RATIO;
    println!(
        "guard: telemetry-on qps {:.3}x off (floor {TELEMETRY_GUARD_MIN_RATIO}) — {} \
         [{samples} samples, {qids} qids]",
        ratio,
        if pass { "PASS" } else { "FAIL" }
    );
    if !pass && std::env::var("WIKISEARCH_ENFORCE_GUARDS").is_ok() {
        panic!(
            "telemetry overhead guard failed: on/off qps ratio {ratio:.3} \
             below floor {TELEMETRY_GUARD_MIN_RATIO}"
        );
    }

    let record = json!({
        "experiment": "telemetry",
        "dataset": dataset,
        "cores": cores,
        "backend": "Seq",
        "clients": clients,
        "queries_per_client": per_client,
        "sampler_interval_ms": TELEMETRY_SAMPLE_MS,
        "reps": reps
            .iter()
            .map(|r| {
                json!({
                    "off_qps": r.off_qps,
                    "on_qps": r.on_qps,
                    "ratio": r.on_qps / r.off_qps,
                    "off_p95_ms": ms(r.off_p95_us),
                    "on_p95_ms": ms(r.on_p95_us),
                })
            })
            .collect::<Vec<_>>(),
        "best_off_qps": best_off,
        "best_on_qps": best_on,
        "ratio": ratio,
        "samples_recorded": samples,
        "qids_issued": qids,
        "guard": { "min_ratio": TELEMETRY_GUARD_MIN_RATIO, "pass": pass },
    });
    if let Ok(path) = ExperimentSink::new().write("BENCH_telemetry", &record) {
        println!("json: {}", path.display());
    }
    record
}
