//! BANKS-II: bidirectional expansion with spreading activation
//! (Kacholia et al., VLDB'05) — the reproduced paper's main baseline.
//!
//! Differences from BANKS-I captured here, matching the paper's analysis
//! of why BANKS-II is slow on large KBs (Sec. VI-A, Exp-1 discussion):
//!
//! 1. expansion order is **activation**, not distance — activation is
//!    seeded as `1/|T_i|` at keyword nodes and decays by `μ` per hop, so
//!    popular directions are explored first even when longer; settled
//!    distances may later shrink, and the correction work ("broadcast to
//!    all its parents ... a recursive update") shows up as extra pops;
//! 2. tree scores sum per-keyword root→leaf path weights with no
//!    co-occurrence credit, so phrase keywords scatter across nodes;
//! 3. top-k emission uses the conservative no-better-tree test, forcing
//!    wide exploration before anything can be returned.

use crate::answer::{BanksOutcome, BanksParams};
use crate::expansion::{run, ExpansionOrder};
use kgraph::KnowledgeGraph;
use textindex::ParsedQuery;

/// The BANKS-II bidirectional-expansion engine.
#[derive(Default)]
pub struct BanksII;

impl BanksII {
    /// Create the engine.
    pub fn new() -> Self {
        BanksII
    }

    /// Run a top-k bidirectional search.
    pub fn search(
        &self,
        graph: &KnowledgeGraph,
        query: &ParsedQuery,
        params: &BanksParams,
    ) -> BanksOutcome {
        run(graph, query, params, ExpansionOrder::Activation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::GraphBuilder;
    use textindex::InvertedIndex;

    #[test]
    fn finds_answers_on_a_small_kb() {
        let mut b = GraphBuilder::new();
        let x = b.add_node("x", "xml standard");
        let r = b.add_node("r", "rdf standard");
        let hub = b.add_node("h", "w3c");
        b.add_edge(x, hub, "e");
        b.add_edge(r, hub, "e");
        let g = b.build();
        let idx = InvertedIndex::build(&g);
        let q = ParsedQuery::parse(&idx, "xml rdf");
        let out = BanksII::new().search(&g, &q, &BanksParams::default());
        assert!(!out.answers.is_empty());
        // The best tree spans both keywords through the hub (rooting at a
        // keyword node scores better than rooting at the hub, whose higher
        // degree makes edges into it costlier).
        let best = &out.answers[0];
        assert!(best.contains_node(x) && best.contains_node(r) && best.contains_node(hub));
        for a in &out.answers {
            a.check_invariants().unwrap();
        }
    }

    #[test]
    fn answers_are_score_sorted_and_bounded_by_k() {
        // A ring of alternating keyword nodes: many candidate roots.
        let mut b = GraphBuilder::new();
        let mut ids = Vec::new();
        for i in 0..20 {
            let text = if i % 2 == 0 {
                "alpha item"
            } else {
                "omega item"
            };
            ids.push(b.add_node(&format!("n{i}"), text));
        }
        for i in 0..20 {
            b.add_edge(ids[i], ids[(i + 1) % 20], "e");
        }
        let g = b.build();
        let idx = InvertedIndex::build(&g);
        let q = ParsedQuery::parse(&idx, "alpha omega");
        let params = BanksParams::default().with_top_k(5);
        let out = BanksII::new().search(&g, &q, &params);
        assert!(out.answers.len() <= 5);
        assert!(out.answers.len() >= 2);
        for w in out.answers.windows(2) {
            assert!(w[0].score <= w[1].score);
        }
    }

    #[test]
    fn pops_grow_with_hub_fanout() {
        // The hub-blowup behaviour the paper attributes to BANKS-II: a
        // high-degree node between the keywords inflates the search.
        let build = |fanout: usize| {
            let mut b = GraphBuilder::new();
            let a = b.add_node("a", "alpha");
            let hub = b.add_node("h", "hub");
            let z = b.add_node("z", "omega");
            b.add_edge(a, hub, "e");
            b.add_edge(hub, z, "e");
            for i in 0..fanout {
                let s = b.add_node(&format!("s{i}"), "satellite");
                b.add_edge(s, hub, "e");
            }
            let g = b.build();
            let idx = InvertedIndex::build(&g);
            let q = ParsedQuery::parse(&idx, "alpha omega");
            BanksII::new().search(&g, &q, &BanksParams::default()).pops
        };
        assert!(build(200) > build(2));
    }
}
