//! Appendix experiment: the r-clique parameter-sensitivity argument
//! ("these parameters may be difficult to fix in a graph with large
//! variety", reproduced paper Sec. II).
fn main() {
    wikisearch_bench::experiments::rclique_sensitivity::run();
}
