//! `wikisearch serve` — a line-protocol TCP query service, the offline
//! analogue of the paper's hosted WikiSearch endpoint.
//!
//! Protocol: one UTF-8 line per request.
//!
//! * `QUERY <keywords…>` → one JSON line with the ranked answers;
//! * `PING` → `PONG`;
//! * `QUIT` → closes the connection.
//!
//! The server handles one connection at a time (searches themselves are
//! parallel via the engine's pool); `--max-requests N` makes it exit after
//! `N` queries, which is how the tests and demo scripts drive it.

use crate::args::ParsedArgs;
use crate::commands::read_graph;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use wikisearch_engine::{Backend, WikiSearch};

/// Run the server until `max_requests` queries have been answered (or
/// forever when it is 0).
pub fn serve(args: &ParsedArgs, out: &mut dyn Write) -> Result<(), String> {
    args.allow_only(&["graph", "port", "backend", "threads", "top-k", "max-requests"])?;
    let graph = read_graph(args.required("graph")?)?;
    let port: u16 = args.get_or("port", 7878)?;
    let threads: usize = args.get_or("threads", 4)?;
    let max_requests: usize = args.get_or("max-requests", 0)?;
    let backend = match args.optional("backend").unwrap_or("cpu") {
        "seq" => Backend::Sequential,
        "cpu" => Backend::ParCpu(threads),
        "gpu" => Backend::GpuStyle(threads),
        "dyn" => Backend::DynPar(threads),
        other => return Err(format!("unknown backend {other:?}")),
    };
    let mut ws = WikiSearch::build_with(graph, backend);
    let mut params = ws.params().clone();
    params.top_k = args.get_or("top-k", params.top_k)?;
    ws.set_params(params);

    let listener = TcpListener::bind(("127.0.0.1", port))
        .map_err(|e| format!("bind 127.0.0.1:{port}: {e}"))?;
    let actual = listener.local_addr().map_err(|e| e.to_string())?.port();
    writeln!(
        out,
        "wikisearch serving on 127.0.0.1:{actual} ({} nodes indexed)",
        ws.graph().num_nodes()
    )
    .map_err(|e| e.to_string())?;

    let mut served = 0usize;
    for stream in listener.incoming() {
        let stream = stream.map_err(|e| e.to_string())?;
        served += handle_connection(stream, &ws);
        if max_requests > 0 && served >= max_requests {
            break;
        }
    }
    writeln!(out, "served {served} queries, shutting down").map_err(|e| e.to_string())
}

/// Serve one connection; returns the number of queries answered.
fn handle_connection(stream: TcpStream, ws: &WikiSearch) -> usize {
    let Ok(peer) = stream.try_clone() else {
        return 0;
    };
    let reader = BufReader::new(peer);
    let mut writer = stream;
    let mut served = 0usize;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line.eq_ignore_ascii_case("QUIT") {
            break;
        }
        if line.eq_ignore_ascii_case("PING") {
            if writeln!(writer, "PONG").is_err() {
                break;
            }
            continue;
        }
        let Some(q) = line.strip_prefix("QUERY ") else {
            let _ = writeln!(writer, r#"{{"error":"expected QUERY/PING/QUIT"}}"#);
            continue;
        };
        let result = ws.search(q);
        served += 1;
        let answers: Vec<serde_json::Value> = result
            .answers
            .iter()
            .map(|a| {
                serde_json::json!({
                    "central": ws.graph().node_text(a.central),
                    "depth": a.depth,
                    "score": a.score,
                    "nodes": a.nodes.len(),
                    "edges": a.edges.len(),
                })
            })
            .collect();
        let doc = serde_json::json!({
            "query": q,
            "answers": answers,
            "unmatched": result.query.unmatched,
            "ms": result.profile.total().as_secs_f64() * 1e3,
        });
        if writeln!(writer, "{doc}").is_err() {
            break;
        }
    }
    served
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;
    use std::io::{BufRead, BufReader};
    use std::net::TcpStream;

    #[test]
    fn serves_queries_over_tcp() {
        // Build a tiny graph file.
        let path = std::env::temp_dir()
            .join(format!("ws-serve-{}.tsv", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let mut b = kgraph::GraphBuilder::new();
        let x = b.add_node("x", "xml");
        let q = b.add_node("q", "query language");
        let s = b.add_node("s", "sql");
        b.add_edge(x, q, "rel");
        b.add_edge(s, q, "rel");
        std::fs::write(&path, kgraph::io::to_tsv(&b.build())).unwrap();

        // Pick a free port by binding and releasing.
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let port = probe.local_addr().unwrap().port();
        drop(probe);

        let argv: Vec<String> = format!(
            "serve --graph {path} --port {port} --backend seq --max-requests 2"
        )
        .split_whitespace()
        .map(String::from)
        .collect();
        let args = parse(&argv).unwrap();
        let server = std::thread::spawn(move || {
            let mut out = Vec::new();
            serve(&args, &mut out).unwrap();
            String::from_utf8(out).unwrap()
        });

        // Connect (retry while the server binds).
        let mut stream = None;
        for _ in 0..100 {
            match TcpStream::connect(("127.0.0.1", port)) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(20)),
            }
        }
        let mut stream = stream.expect("server reachable");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();

        writeln!(stream, "PING").unwrap();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "PONG");

        line.clear();
        writeln!(stream, "QUERY xml sql").unwrap();
        reader.read_line(&mut line).unwrap();
        let doc: serde_json::Value = serde_json::from_str(&line).unwrap();
        assert_eq!(doc["answers"][0]["central"], "query language");

        line.clear();
        writeln!(stream, "nonsense protocol line").unwrap();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("error"));

        line.clear();
        writeln!(stream, "QUERY sql").unwrap();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("answers"));
        writeln!(stream, "QUIT").unwrap();

        let log = server.join().unwrap();
        assert!(log.contains("served 2 queries"), "{log}");
        let _ = std::fs::remove_file(path);
    }
}
