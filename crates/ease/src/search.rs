//! EASE query evaluation: r-radius Steiner graphs inside indexed balls.

use crate::index::RadiusIndex;
use kgraph::{KnowledgeGraph, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use textindex::ParsedQuery;

/// One EASE answer: a Steiner graph inside one indexed ball.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EaseAnswer {
    /// The ball's center.
    pub center: NodeId,
    /// One content node per keyword group (nearest to the center).
    pub content: Vec<NodeId>,
    /// Steiner-graph nodes (center-to-content paths inside the ball).
    pub nodes: Vec<NodeId>,
    /// Steiner-graph edges, `(min, max)`, sorted, unique.
    pub edges: Vec<(NodeId, NodeId)>,
    /// `Σ_i dist(center, content_i)` in hops; smaller is better.
    pub score: u32,
}

/// The EASE engine, bound to a graph and its ball index.
pub struct EaseSearch<'a> {
    graph: &'a KnowledgeGraph,
    index: &'a RadiusIndex,
}

impl<'a> EaseSearch<'a> {
    /// Bind to a prebuilt [`RadiusIndex`].
    pub fn new(graph: &'a KnowledgeGraph, index: &'a RadiusIndex) -> Self {
        EaseSearch { graph, index }
    }

    /// Top-k r-radius Steiner graphs: for every indexed ball containing at
    /// least one node of every keyword group, extract the Steiner graph
    /// from the center to the nearest content node per group.
    pub fn search(&self, query: &ParsedQuery, top_k: usize) -> Vec<EaseAnswer> {
        let q = query.num_keywords();
        if q == 0 {
            return Vec::new();
        }
        let mut answers: Vec<EaseAnswer> = Vec::new();
        'balls: for ball in &self.index.balls {
            let mut content = Vec::with_capacity(q);
            let mut score = 0u32;
            for group in &query.groups {
                let best =
                    group.nodes.iter().filter_map(|&v| ball.distance(v).map(|d| (d, v))).min();
                match best {
                    Some((d, v)) => {
                        content.push(v);
                        score += d as u32;
                    }
                    None => continue 'balls,
                }
            }
            let (nodes, edges) = self.steiner_within(ball.center, &content);
            answers.push(EaseAnswer { center: ball.center, content, nodes, edges, score });
        }
        answers.sort_by(|a, b| a.score.cmp(&b.score).then(a.center.cmp(&b.center)));
        answers.truncate(top_k);
        answers
    }

    /// Union of shortest paths (whole-graph BFS; inside the ball these
    /// coincide with in-ball paths for members within radius) from the
    /// center to every content node.
    fn steiner_within(
        &self,
        center: NodeId,
        content: &[NodeId],
    ) -> (Vec<NodeId>, Vec<(NodeId, NodeId)>) {
        let n = self.graph.num_nodes();
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        let mut seen = vec![false; n];
        seen[center.index()] = true;
        let mut queue = VecDeque::from([center]);
        while let Some(v) = queue.pop_front() {
            for adj in self.graph.neighbors(v) {
                let t = adj.target();
                if !seen[t.index()] {
                    seen[t.index()] = true;
                    parent[t.index()] = Some(v);
                    queue.push_back(t);
                }
            }
        }
        let mut nodes = vec![center];
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        for &c in content {
            let mut cur = c;
            while let Some(p) = parent[cur.index()] {
                edges.push((cur.min(p), cur.max(p)));
                if !nodes.contains(&cur) {
                    nodes.push(cur);
                }
                if cur == center {
                    break;
                }
                cur = p;
            }
            if !nodes.contains(&cur) {
                nodes.push(cur);
            }
        }
        nodes.sort_unstable();
        nodes.dedup();
        edges.sort_unstable();
        edges.dedup();
        (nodes, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use textindex::InvertedIndex;

    fn fixture() -> (KnowledgeGraph, InvertedIndex) {
        // compact pair near n0; the same keywords also live at the end of
        // a long tail whose ball swallows the compact pair's ball.
        let mut b = kgraph::GraphBuilder::new();
        let a = b.add_node("a", "apple");
        let z = b.add_node("z", "banana");
        let c = b.add_node("c", "connector");
        b.add_edge(a, c, "e");
        b.add_edge(z, c, "e");
        let mut prev = c;
        for i in 0..2 {
            let m = b.add_node(&format!("m{i}"), "mid");
            b.add_edge(prev, m, "e");
            prev = m;
        }
        let g = b.build();
        let idx = InvertedIndex::build(&g);
        (g, idx)
    }

    #[test]
    fn finds_the_compact_steiner_graph_without_maximality() {
        let (g, inv) = fixture();
        let index = RadiusIndex::build(&g, 1, false);
        let query = ParsedQuery::parse(&inv, "apple banana");
        let answers = EaseSearch::new(&g, &index).search(&query, 5);
        assert!(!answers.is_empty());
        let best = &answers[0];
        assert_eq!(best.center, g.find_node_by_key("c").unwrap());
        assert_eq!(best.score, 2);
        assert_eq!(best.nodes.len(), 3);
        assert_eq!(best.edges.len(), 2);
    }

    /// The criticism the reproduced paper relays from Kargar & An: with
    /// maximality filtering, the compact answer's ball can be dropped
    /// because a larger ball contains it — the answer is then only
    /// reported from a farther center, with a worse score.
    #[test]
    fn maximality_filtering_degrades_the_best_answer() {
        let (g, inv) = fixture();
        let query = ParsedQuery::parse(&inv, "apple banana");

        let all = RadiusIndex::build(&g, 1, false);
        let best_all = EaseSearch::new(&g, &all).search(&query, 1)[0].score;

        let maximal = RadiusIndex::build(&g, 1, true);
        // c's radius-1 ball {a, z, c, m0} — check whether the filter kept
        // it; on this topology m0's ball {c, m0, m1} and c's overlap, but
        // the end nodes' balls are subsumed.
        let answers = EaseSearch::new(&g, &maximal).search(&query, 1);
        assert!(
            answers.is_empty() || answers[0].score >= best_all,
            "maximality can only lose or degrade the compact answer"
        );
        assert!(maximal.balls.len() < all.balls.len());
    }

    #[test]
    fn unanswerable_queries_return_empty() {
        let (g, inv) = fixture();
        let index = RadiusIndex::build(&g, 1, false);
        // "apple mid": within radius 1 no single ball holds both... the
        // connector ball holds apple+m0("mid") actually — use a term pair
        // that cannot co-occur in one radius-1 ball instead:
        let query = ParsedQuery::parse(&inv, "apple banana mid");
        let answers = EaseSearch::new(&g, &index).search(&query, 5);
        // c's ball {a, z, m0} covers all three — radius 1 suffices here.
        // Shrink to radius 0 to force emptiness.
        let point = RadiusIndex::build(&g, 0, false);
        assert!(EaseSearch::new(&g, &point).search(&query, 5).is_empty());
        let _ = answers;
    }
}
