//! Pinned end-to-end snapshots: exact expected outputs for the paper's
//! worked example. These catch silent behavioural drift that looser
//! invariant tests would let through.

use datagen::figures::fig4_graph;
use wikisearch_engine::{Backend, WikiSearch};

#[test]
fn fig4_answer_snapshot() {
    let (graph, activation) = fig4_graph();
    let mut ws = WikiSearch::build_with(graph, Backend::Sequential);
    let params = ws.params().clone().with_top_k(1).with_explicit_activation(activation);
    ws.set_params(params);
    let result = ws.search("XML RDF SQL");
    let best = &result.answers[0];

    // The exact answer graph of the quickstart example.
    let nodes: Vec<&str> = best.nodes.iter().map(|&v| ws.graph().node_text(v)).collect();
    assert_eq!(
        nodes,
        vec![
            "SQL",
            "Query language",
            "XPath",
            "SPARQL query language for RDF",
            "RDF query language",
            "XPath 2",
            "XPath 3",
            "XQuery",
            "XML",
        ]
    );
    assert_eq!(best.num_edges(), 12);
    assert_eq!(best.depth, 4);
    assert!((best.score - 4f64.powf(0.2) * sum_weights(&ws, best)).abs() < 1e-9);

    // The rendered text form is stable.
    let rendered = ws.render_answer(best);
    let expected_lines = [
        "SQL --[instance of]-- Query language",
        "XPath 2 --[used by]-- XML",
        "keyword 1: SPARQL query language for RDF, RDF query language",
    ];
    for line in expected_lines {
        assert!(rendered.contains(line), "missing {line:?} in:\n{rendered}");
    }
}

fn sum_weights(ws: &WikiSearch, a: &central::CentralGraph) -> f64 {
    a.nodes.iter().map(|&v| ws.graph().weight(v) as f64).sum()
}

#[test]
fn fig4_per_keyword_paths_snapshot() {
    let (graph, activation) = fig4_graph();
    let mut ws = WikiSearch::build_with(graph, Backend::Sequential);
    let params = ws.params().clone().with_top_k(1).with_explicit_activation(activation);
    ws.set_params(params);
    let result = ws.search("XML RDF SQL");
    let best = &result.answers[0];
    // XML reaches v2 through three parallel families (XPath 2/3 → XPath,
    // XQuery direct): 7 hitting-path edges. SQL is a single edge.
    assert_eq!(best.keyword_edges.len(), 3);
    assert_eq!(best.keyword_edges[0].len(), 7, "XML multi-paths");
    assert_eq!(best.keyword_edges[2].len(), 1, "SQL direct edge");
    // Union equals the answer's edge set (Def. 3).
    let mut union: Vec<_> = best.keyword_edges.iter().flatten().copied().collect();
    union.sort_unstable();
    union.dedup();
    assert_eq!(union, best.edges);
}
