//! Wire-level shard invariance: a `--shards 4` server answers the full
//! line protocol — QUERY (cache miss and hit), EXPLAIN, budget errors —
//! byte-identically to a `--shards 1` server, and the concurrent soak
//! (8 good clients mixed with a fault-injecting one) keeps that
//! identity under load while the quarantine/shed counters account
//! exactly and graceful drain still works.
//!
//! The soak test requires the `fault-inject` feature:
//!
//! ```text
//! cargo test -p wikisearch-cli --features fault-inject --test serve_sharded
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

fn free_port() -> u16 {
    let probe = TcpListener::bind("127.0.0.1:0").unwrap();
    let port = probe.local_addr().unwrap().port();
    drop(probe);
    port
}

fn graph_file(tag: &str) -> String {
    let path = std::env::temp_dir()
        .join(format!("ws-shardserve-{}-{tag}.tsv", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let mut b = kgraph::GraphBuilder::new();
    let x = b.add_node("x", "xml");
    let q = b.add_node("q", "query language");
    let s = b.add_node("s", "sql");
    let r = b.add_node("r", "rdf");
    let j = b.add_node("j", "json format");
    b.add_edge(x, q, "rel");
    b.add_edge(s, q, "rel");
    b.add_edge(r, q, "rel");
    b.add_edge(j, x, "rel");
    std::fs::write(&path, kgraph::io::to_tsv(&b.build())).unwrap();
    path
}

/// Start `wikisearch serve` on a background thread; returns the join
/// handle yielding the server log.
fn spawn_server(argv_line: String) -> std::thread::JoinHandle<String> {
    std::thread::spawn(move || {
        let argv: Vec<String> = argv_line.split_whitespace().map(String::from).collect();
        let args = wikisearch_cli::args::parse(&argv).unwrap();
        let mut out = Vec::new();
        wikisearch_cli::serve::serve(&args, &mut out).unwrap();
        String::from_utf8(out).unwrap()
    })
}

fn connect(port: u16) -> TcpStream {
    for _ in 0..150 {
        if let Ok(s) = TcpStream::connect(("127.0.0.1", port)) {
            s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
            return s;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("server not reachable on port {port}");
}

/// One request, one response line.
fn roundtrip(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, request: &str) -> String {
    writeln!(stream, "{request}").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.ends_with('\n'), "truncated response to {request:?}: {line:?}");
    line.trim_end().to_string()
}

/// A response with its volatile fields removed, re-serialized
/// deterministically so the `--shards 1` and `--shards 4` runs can be
/// compared byte for byte. Strips the wall-clock `ms`, and inside an
/// EXPLAIN trace the engine label (which names the shard count by
/// design), the session identity (monolithic-only) and the phase
/// timings — everything else, including per-level frontier/hit counts
/// and total expansions, must match exactly.
fn normalized(response: &str) -> String {
    let mut doc: serde_json::Value =
        serde_json::from_str(response).unwrap_or_else(|e| panic!("bad JSON {response:?}: {e}"));
    let serde_json::Value::Object(entries) = &mut doc else {
        panic!("non-object response {response:?}");
    };
    entries.retain(|(key, _)| key != "ms" && key != "qid");
    if let Some((_, serde_json::Value::Object(trace))) =
        entries.iter_mut().find(|(key, _)| key == "trace")
    {
        trace.retain(|(key, _)| {
            !matches!(
                key.as_str(),
                "engine"
                    | "session_id"
                    | "session_queries"
                    | "phase_ms"
                    | "qid"
                    | "cache_source_qid"
            )
        });
    }
    serde_json::to_string(&doc).unwrap()
}

/// The protocol exchange both servers run: cache misses, a reordered
/// cache hit, a single keyword, an unmatched term, and two EXPLAINs
/// (5 QUERY successes, so `--max-requests 5` drains the server).
const EXCHANGE: [&str; 7] = [
    "QUERY xml sql",
    "QUERY sql   XML",
    "QUERY rdf query",
    "QUERY json xml warpdrive",
    "EXPLAIN xml sql rdf",
    "EXPLAIN json",
    "QUERY xml sql rdf",
];

/// Run the exchange against a fresh server with the given shard count;
/// returns (normalized responses, server log).
fn run_exchange(path: &str, shards: usize) -> (Vec<String>, String) {
    let port = free_port();
    let server = spawn_server(format!(
        "serve --graph {path} --port {port} --backend gpu --threads 2 --workers 2 \
         --shards {shards} --max-requests 5"
    ));
    let mut stream = connect(port);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let responses: Vec<String> = EXCHANGE
        .iter()
        .map(|req| normalized(&roundtrip(&mut stream, &mut reader, req)))
        .collect();
    writeln!(stream, "QUIT").unwrap();
    (responses, server.join().unwrap())
}

/// The wire-level acceptance check: the full exchange through
/// `--shards 4` is byte-identical to `--shards 1` after stripping the
/// volatile fields, and the sharded trace names the sharded engine.
#[test]
fn sharded_server_is_byte_identical_to_unsharded() {
    let path = graph_file("identity");
    let (unsharded, log1) = run_exchange(&path, 1);
    let (sharded, log4) = run_exchange(&path, 4);
    assert_eq!(sharded, unsharded, "sharded wire responses diverged");
    assert!(!log1.contains("shards"), "{log1}");
    assert!(log4.contains("4 shards"), "{log4}");
    assert!(log1.contains("served 5 queries"), "{log1}");
    assert!(log4.contains("served 5 queries"), "{log4}");

    // The raw (un-normalized) EXPLAIN on a sharded server names the
    // sharded engine in its trace — the one intentional difference.
    let port = free_port();
    let server = spawn_server(format!(
        "serve --graph {path} --port {port} --backend gpu --threads 2 --shards 4 \
         --max-requests 1"
    ));
    let mut stream = connect(port);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let response = roundtrip(&mut stream, &mut reader, "EXPLAIN xml sql");
    let doc: serde_json::Value = serde_json::from_str(&response).unwrap();
    assert_eq!(doc["trace"]["engine"], "GPU-Par[shards=4]", "{response}");
    assert!(doc["trace"]["cache"].is_string(), "explain still reports bypass: {response}");
    let answer = roundtrip(&mut stream, &mut reader, "QUERY xml sql");
    assert!(answer.contains("answers"), "{answer}");
    writeln!(stream, "QUIT").unwrap();
    server.join().unwrap();
    let _ = std::fs::remove_file(path);
}

/// Budget enforcement is engine-independent: a starved expansion cap
/// trips the same structured error on a sharded server as on an
/// unsharded one, and STATS accounts it.
#[test]
fn sharded_budget_errors_match_unsharded() {
    let path = graph_file("budget");
    let error_kind = |shards: usize| {
        let port = free_port();
        // No --max-requests: the failing query never drains the server,
        // so the thread is leaked and dies with the test process.
        let _server = spawn_server(format!(
            "serve --graph {path} --port {port} --backend seq --shards {shards} \
             --max-expansions 1"
        ));
        let mut stream = connect(port);
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let response = roundtrip(&mut stream, &mut reader, "QUERY xml sql rdf");
        let doc: serde_json::Value = serde_json::from_str(&response).unwrap();
        let stats: serde_json::Value =
            serde_json::from_str(&roundtrip(&mut stream, &mut reader, "STATS")).unwrap();
        assert_eq!(stats["budget_exhausted"], 1u64, "{stats}");
        assert_eq!(stats["served"], 0u64, "failed queries are not served: {stats}");
        writeln!(stream, "QUIT").unwrap();
        doc["error"].as_str().unwrap().to_string()
    };
    assert_eq!(error_kind(4), error_kind(1));
    assert_eq!(error_kind(1), "budget_exhausted");
    let _ = std::fs::remove_file(path);
}

#[cfg(feature = "fault-inject")]
mod soak {
    use super::*;

    const GOOD_QUERIES: [&str; 5] = ["xml sql", "rdf query", "sql rdf", "xml", "xml sql"];
    const GOOD_CLIENTS: usize = 8;

    /// Run the good query sequence alone on an unsharded, unperturbed
    /// server — the reference every soak client must match byte for byte.
    fn baseline_responses(path: &str) -> Vec<String> {
        let port = free_port();
        let server = spawn_server(format!(
            "serve --graph {path} --port {port} --backend seq --workers 4 \
             --timeout-ms 500 --shards 1 --max-requests {}",
            GOOD_QUERIES.len()
        ));
        let mut stream = connect(port);
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let responses: Vec<String> = GOOD_QUERIES
            .iter()
            .map(|q| normalized(&roundtrip(&mut stream, &mut reader, &format!("QUERY {q}"))))
            .collect();
        server.join().unwrap();
        responses
    }

    /// The sharded soak: 8 good client threads against a `--shards 4`
    /// server, mixed with one fault-injecting client (panics and
    /// deadline blows). Every good client's answers must be
    /// byte-identical to the unsharded unperturbed baseline, the
    /// quarantine counters must account exactly (each panic destroys
    /// one session *per shard*; the facade pool is untouched), and the
    /// server must still drain gracefully.
    #[test]
    fn sharded_soak_under_fault_load() {
        let path = graph_file("soak");
        let expected = baseline_responses(&path);

        let total_good = GOOD_CLIENTS * GOOD_QUERIES.len();
        let port = free_port();
        let server = spawn_server(format!(
            "serve --graph {path} --port {port} --backend seq --workers 4 \
             --timeout-ms 500 --shards 4 --max-requests {}",
            total_good + 1
        ));

        // Fault client: three panicking queries and three that blow the
        // deadline, interleaved, concurrent with the good clients.
        let bad = std::thread::spawn(move || {
            let mut stream = connect(port);
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut errors = Vec::new();
            for _ in 0..3 {
                errors.push(roundtrip(&mut stream, &mut reader, "QUERY fault0panic xml sql"));
                errors.push(roundtrip(&mut stream, &mut reader, "QUERY fault0sleep5000 xml sql"));
            }
            writeln!(stream, "QUIT").unwrap();
            errors
        });
        let good: Vec<std::thread::JoinHandle<Vec<String>>> = (0..GOOD_CLIENTS)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut stream = connect(port);
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let got: Vec<String> = GOOD_QUERIES
                        .iter()
                        .map(|q| {
                            normalized(&roundtrip(&mut stream, &mut reader, &format!("QUERY {q}")))
                        })
                        .collect();
                    writeln!(stream, "QUIT").unwrap();
                    got
                })
            })
            .collect();

        for (i, line) in bad.join().unwrap().iter().enumerate() {
            let doc: serde_json::Value = serde_json::from_str(line).unwrap();
            let expected_error = if i % 2 == 0 {
                "internal"
            } else {
                "deadline_exceeded"
            };
            assert_eq!(doc["error"], expected_error, "bad response #{i}: {line}");
        }
        for (c, client) in good.into_iter().enumerate() {
            assert_eq!(
                client.join().unwrap(),
                expected,
                "good client #{c}'s answers changed under sharded fault load"
            );
        }

        // Exact accounting, checked pre-drain on a fresh connection:
        // three panics quarantined one session per shard (3 x 4), the
        // facade pool was never touched on the sharded path, three
        // timeouts, nothing shed, every good query served.
        let mut stream = connect(port);
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let stats: serde_json::Value =
            serde_json::from_str(&roundtrip(&mut stream, &mut reader, "STATS")).unwrap();
        assert_eq!(stats["panics"], 3u64, "{stats}");
        assert_eq!(stats["timeouts"], 3u64, "{stats}");
        assert_eq!(stats["shed"], 0u64, "{stats}");
        assert_eq!(stats["served"], total_good as u64, "{stats}");
        assert_eq!(stats["shards"]["shards"], 4u64, "{stats}");
        assert_eq!(stats["shards"]["pools"]["quarantined"], 12u64, "{stats}");
        assert_eq!(stats["shards"]["pools"]["in_flight"], 0u64, "{stats}");
        assert_eq!(stats["pool"]["quarantined"], 0u64, "{stats}");
        assert_eq!(stats["pool"]["queries_run"], 0u64, "{stats}");

        // One more good query reaches --max-requests and drains the
        // server gracefully.
        let answer = roundtrip(&mut stream, &mut reader, "QUERY xml sql");
        assert!(answer.contains("answers"), "{answer}");
        let log = server.join().unwrap();
        assert!(log.contains(&format!("served {} queries", total_good + 1)), "{log}");
        assert!(log.contains("4 shards"), "{log}");
        let _ = std::fs::remove_file(path);
    }
}
