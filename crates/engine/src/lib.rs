//! # wikisearch-engine — the end-to-end WikiSearch facade
//!
//! The paper ships its algorithm as an online service ("WikiSearch") over
//! the Wikidata KB. This crate is that service's engine layer: it owns the
//! graph, the inverted keyword index, the dataset's sampled average
//! distance, and a pluggable search backend, and turns a raw keyword
//! string into ranked, renderable answer graphs.
//!
//! ```
//! use kgraph::GraphBuilder;
//! use wikisearch_engine::WikiSearch;
//!
//! let mut b = GraphBuilder::new();
//! let x = b.add_node("Q1", "XML");
//! let q = b.add_node("Q2", "query language");
//! let s = b.add_node("Q3", "SQL");
//! b.add_edge(x, q, "related to");
//! b.add_edge(s, q, "instance of");
//!
//! let ws = WikiSearch::build(b.build());
//! let result = ws.search("xml sql");
//! assert_eq!(result.answers.len(), 1);
//! println!("{}", ws.render_answer(&result.answers[0]));
//! ```

#![warn(missing_docs)]

pub mod render;

use central::engine::{
    DynParEngine, GpuStyleEngine, KeywordSearchEngine, ParCpuEngine, SearchOutcome, SearchStats,
    SeqEngine,
};
use central::{CentralGraph, PhaseProfile, SearchParams, SearchSession};
use kgraph::{estimate_average_distance, KnowledgeGraph};
use parking_lot::Mutex;
use textindex::{InvertedIndex, ParsedQuery};

/// Which backend executes searches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Single-threaded reference engine.
    Sequential,
    /// Lock-free coarse-grained CPU engine with this many threads.
    ParCpu(usize),
    /// GPU-kernel-structured engine with this many threads.
    GpuStyle(usize),
    /// Lock-based dynamic-memory baseline with this many threads.
    DynPar(usize),
}

/// One search's result: the parsed query, the ranked answers, and timing.
#[derive(Clone, Debug)]
pub struct WikiSearchResult {
    /// The analyzed query (matched groups + unmatched terms).
    pub query: ParsedQuery,
    /// Ranked Central Graph answers, best first.
    pub answers: Vec<CentralGraph>,
    /// Per-phase timings of the search.
    pub profile: PhaseProfile,
    /// Average keyword frequency of the query (Table V's `kwf`).
    pub kwf: f64,
    /// Search statistics, including the per-level progression trace.
    pub stats: SearchStats,
}

/// The WikiSearch engine: graph + index + backend + defaults.
///
/// The engine keeps one [`SearchSession`] for its lifetime: the first
/// query pays the `n × q` state allocation, every later query re-arms it
/// with a single epoch bump (see `central::session`). The session is
/// engine-agnostic, so swapping backends keeps the warm state.
pub struct WikiSearch {
    graph: KnowledgeGraph,
    index: InvertedIndex,
    params: SearchParams,
    backend: Box<dyn KeywordSearchEngine + Send + Sync>,
    session: Mutex<SearchSession>,
}

impl WikiSearch {
    /// Build over `graph` with the default (sequential) backend, Table III
    /// default parameters, and an average distance sampled from the graph
    /// itself (200 pairs — callers with a known `A` can override via
    /// [`WikiSearch::set_params`]).
    pub fn build(graph: KnowledgeGraph) -> Self {
        Self::build_with(graph, Backend::Sequential)
    }

    /// Build with an explicit backend.
    pub fn build_with(graph: KnowledgeGraph, backend: Backend) -> Self {
        let index = InvertedIndex::build(&graph);
        let est = estimate_average_distance(&graph, 200, 32, 0xA11CE);
        let a = if est.reachable_pairs == 0 { 3.68 } else { est.mean };
        let params = SearchParams::default().with_average_distance(a);
        WikiSearch {
            graph,
            index,
            params,
            backend: make_backend(backend),
            session: Mutex::new(SearchSession::new()),
        }
    }

    /// Swap the search backend.
    pub fn set_backend(&mut self, backend: Backend) {
        self.backend = make_backend(backend);
    }

    /// Override the default search parameters (α, top-k, λ, `A`, …).
    pub fn set_params(&mut self, params: SearchParams) {
        self.params = params;
    }

    /// Current default parameters.
    pub fn params(&self) -> &SearchParams {
        &self.params
    }

    /// The underlying graph.
    pub fn graph(&self) -> &KnowledgeGraph {
        &self.graph
    }

    /// The keyword index.
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// Search with the engine's default parameters.
    pub fn search(&self, raw_query: &str) -> WikiSearchResult {
        self.search_with(raw_query, &self.params.clone())
    }

    /// Search with explicit parameters (e.g. a different α or top-k).
    /// Runs through the engine's persistent session — the warm path.
    pub fn search_with(&self, raw_query: &str, params: &SearchParams) -> WikiSearchResult {
        let query = ParsedQuery::parse(&self.index, raw_query);
        let kwf = query.avg_keyword_frequency();
        let SearchOutcome { answers, profile, stats } =
            self.backend
                .search_session(&mut self.session.lock(), &self.graph, &query, params);
        WikiSearchResult { query, answers, profile, kwf, stats }
    }

    /// Number of queries answered through the engine's reusable session.
    pub fn session_queries_run(&self) -> u64 {
        self.session.lock().queries_run()
    }

    /// Parse a query without searching (used by harnesses for kwf stats).
    pub fn parse(&self, raw_query: &str) -> ParsedQuery {
        ParsedQuery::parse(&self.index, raw_query)
    }

    /// Human-readable rendering of one answer graph.
    pub fn render_answer(&self, answer: &CentralGraph) -> String {
        render::render_answer(&self.graph, answer)
    }
}

fn make_backend(backend: Backend) -> Box<dyn KeywordSearchEngine + Send + Sync> {
    match backend {
        Backend::Sequential => Box::new(SeqEngine::new()),
        Backend::ParCpu(t) => Box::new(ParCpuEngine::new(t)),
        Backend::GpuStyle(t) => Box::new(GpuStyleEngine::new(t)),
        Backend::DynPar(t) => Box::new(DynParEngine::new(t)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::GraphBuilder;

    fn small_engine(backend: Backend) -> WikiSearch {
        let mut b = GraphBuilder::new();
        let x = b.add_node("Q1", "XML");
        let q = b.add_node("Q2", "query language");
        let s = b.add_node("Q3", "SQL");
        let r = b.add_node("Q4", "RDF");
        b.add_edge(x, q, "related to");
        b.add_edge(s, q, "instance of");
        b.add_edge(r, q, "instance of");
        WikiSearch::build_with(b.build(), backend)
    }

    #[test]
    fn end_to_end_search_finds_the_hub() {
        let ws = small_engine(Backend::Sequential);
        let result = ws.search("xml sql rdf");
        assert_eq!(result.query.num_keywords(), 3);
        assert!(!result.answers.is_empty());
        let best = &result.answers[0];
        assert_eq!(ws.graph().node_text(best.central), "query language");
        assert!(result.kwf > 0.0);
    }

    #[test]
    fn backends_are_interchangeable() {
        let reference = small_engine(Backend::Sequential).search("xml sql");
        for backend in [Backend::ParCpu(2), Backend::GpuStyle(2), Backend::DynPar(2)] {
            let result = small_engine(backend).search("xml sql");
            assert_eq!(result.answers.len(), reference.answers.len(), "{backend:?}");
            assert_eq!(result.answers[0].nodes, reference.answers[0].nodes, "{backend:?}");
        }
    }

    #[test]
    fn unmatched_terms_are_surfaced() {
        let ws = small_engine(Backend::Sequential);
        let result = ws.search("xml warpdrive");
        assert_eq!(result.query.unmatched, vec!["warpdriv"]); // stemmed form
        assert_eq!(result.query.num_keywords(), 1);
    }

    #[test]
    fn stats_trace_records_level_progression() {
        let ws = small_engine(Backend::Sequential);
        let result = ws.search("xml sql rdf");
        let trace = &result.stats.trace;
        assert!(!trace.is_empty());
        // Levels are consecutive from 0 and the identified counts sum to
        // the candidate count.
        for (i, t) in trace.iter().enumerate() {
            assert_eq!(t.level as usize, i);
            assert!(t.frontier > 0);
        }
        let identified: usize = trace.iter().map(|t| t.identified).sum();
        assert_eq!(identified, result.stats.central_candidates);
    }

    #[test]
    fn repeated_searches_reuse_one_session() {
        let ws = small_engine(Backend::Sequential);
        assert_eq!(ws.session_queries_run(), 0);
        let first = ws.search("xml sql rdf");
        let second = ws.search("xml sql");
        let third = ws.search("xml sql rdf");
        assert_eq!(ws.session_queries_run(), 3);
        // Warm-path answers match the corresponding fresh ones.
        assert_eq!(first.answers[0].nodes, third.answers[0].nodes);
        assert_eq!(first.answers[0].edges, third.answers[0].edges);
        assert!(!second.answers.is_empty());
    }

    #[test]
    fn backend_swap_keeps_the_warm_session() {
        let mut ws = small_engine(Backend::Sequential);
        let seq = ws.search("xml sql rdf");
        ws.set_backend(Backend::GpuStyle(2));
        let gpu = ws.search("xml sql rdf");
        assert_eq!(ws.session_queries_run(), 2);
        assert_eq!(seq.answers[0].nodes, gpu.answers[0].nodes);
        ws.set_backend(Backend::DynPar(2));
        let dy = ws.search("xml sql rdf");
        assert_eq!(seq.answers[0].nodes, dy.answers[0].nodes);
        assert_eq!(ws.session_queries_run(), 3);
    }

    #[test]
    fn params_override_applies() {
        let mut ws = small_engine(Backend::Sequential);
        let p = ws.params().clone().with_top_k(1);
        ws.set_params(p);
        let result = ws.search("xml sql rdf");
        assert!(result.answers.len() <= 1);
    }
}
