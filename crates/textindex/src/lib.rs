//! # textindex — keyword matching substrate for WikiSearch
//!
//! The paper matches query keywords to *keyword nodes* (`T_i`, the set of
//! nodes whose label contains term `t_i`) after "stopping word filtering and
//! word stemming" (Sec. II — this preprocessing is why Wikidata yields over
//! 5 million distinct keywords). This crate provides that text pipeline and
//! the inverted index over node labels:
//!
//! * [`tokenizer`] — Unicode-aware lowercasing word splitter;
//! * [`stopwords`] — embedded English stopword list;
//! * [`stemmer`] — a complete Porter stemmer;
//! * [`analyzer`] — the composed pipeline (tokenize → stop → stem);
//! * [`inverted`] — term → posting-list index over a
//!   [`kgraph::KnowledgeGraph`]'s node texts, plus the keyword-frequency
//!   statistics reported in the paper's Table V (`kwf` columns);
//! * [`query`] — parsing a raw query string into matched keyword groups.
//!
//! ```
//! use kgraph::GraphBuilder;
//! use textindex::InvertedIndex;
//!
//! let mut b = GraphBuilder::new();
//! b.add_node("Q1", "SPARQL query language for RDF");
//! b.add_node("Q2", "RDF query language");
//! let g = b.build();
//! let idx = InvertedIndex::build(&g);
//! assert_eq!(idx.lookup("rdf").unwrap().len(), 2);
//! // stemming: "languages" matches "language"
//! assert_eq!(idx.lookup("languages").unwrap().len(), 2);
//! ```

#![warn(missing_docs)]

pub mod analyzer;
pub mod inverted;
pub mod query;
pub mod stemmer;
pub mod stopwords;
pub mod tokenizer;

pub use analyzer::{analyze, normalize_query};
pub use inverted::InvertedIndex;
pub use query::{KeywordGroup, ParsedQuery};
pub use stemmer::porter_stem;
pub use stopwords::is_stopword;
pub use tokenizer::tokenize;
