//! Fleet-wide query identity and windowed time-series telemetry.
//!
//! Three building blocks, shared by the engine facade and the serving
//! layer:
//!
//! * [`QueryIdGen`] — the fleet-wide query-ID allocator. Every query gets
//!   a `u64` ID at accept; the ID rides the result, the trace, the slow
//!   log, every wire response (`"qid"`), and — Hello-gated — the remote
//!   frame protocol, so one slow query can be joined across the
//!   coordinator and its shard workers.
//! * [`SampleRing`] — a lock-free single-writer/multi-reader ring of
//!   fixed-width `u64` records, built purely from `AtomicU64` seqlock
//!   slots (no `unsafe`, no locks). The background sampler publishes one
//!   [`TelemetrySample`] per tick; readers ([`Telemetry::window`]) never
//!   block the writer and detect torn slots by sequence check.
//! * [`WindowDelta`] — the difference between two samples: windowed
//!   rates (qps, hit rate) and windowed latency/expansion percentiles
//!   computed by *bucket-wise histogram subtraction*, so `STATS WINDOW`
//!   reports the last-N-seconds tail, not the since-boot tail.
//!
//! Everything here is off the query hot path: recording a sample is the
//! sampler thread's job, recording a finished query is two relaxed
//! seqlock writes, and when the sampler is disabled the rings are never
//! written at all. A differential proptest pins that telemetry on vs off
//! leaves answers, score bits, stats and error classes byte-identical.

use crate::metrics::{HistogramSnapshot, MetricsSnapshot, BUCKETS};
use std::sync::atomic::{fence, AtomicU64, Ordering};

/// Allocates fleet-wide query IDs. IDs start at 1 so `0` can mean
/// "no query" in logs and wire documents that predate the ID.
#[derive(Default)]
pub struct QueryIdGen(AtomicU64);

impl QueryIdGen {
    /// A generator whose first ID is 1.
    pub const fn new() -> Self {
        QueryIdGen(AtomicU64::new(0))
    }

    /// Allocate the next query ID (1, 2, 3, …).
    #[inline]
    pub fn next(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The last ID handed out (0 before the first query).
    pub fn last(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A live gauge of queries currently executing, updated by RAII guard so
/// panicking queries can never leak an in-flight count.
#[derive(Default)]
pub struct InFlight(AtomicU64);

impl InFlight {
    /// A gauge at zero.
    pub const fn new() -> Self {
        InFlight(AtomicU64::new(0))
    }

    /// Enter: increments the gauge until the guard drops.
    pub fn enter(&self) -> FlightGuard<'_> {
        self.0.fetch_add(1, Ordering::Relaxed);
        FlightGuard(self)
    }

    /// Queries currently in flight.
    pub fn current(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Decrements its [`InFlight`] gauge on drop (including unwinds).
pub struct FlightGuard<'a>(&'a InFlight);

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        self.0 .0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// One seqlock slot: an even sequence number means the words are
/// consistent; an odd one means a write is in progress. Readers retry on
/// odd or changed sequences. All fields are atomics, so torn reads are a
/// *logical* hazard handled by the sequence check, never a data race.
struct Slot {
    seq: AtomicU64,
    words: Vec<AtomicU64>,
}

/// A lock-free ring of fixed-width `u64` records with one writer (the
/// sampler thread) and any number of readers. Capacity and width are
/// fixed at construction; publishing overwrites the oldest slot.
pub struct SampleRing {
    width: usize,
    slots: Vec<Slot>,
    /// Total records ever published (the next record's global index).
    head: AtomicU64,
}

impl SampleRing {
    /// A ring of `capacity` records of `width` words each.
    pub fn new(capacity: usize, width: usize) -> Self {
        let capacity = capacity.max(2);
        SampleRing {
            width,
            slots: (0..capacity)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    words: (0..width).map(|_| AtomicU64::new(0)).collect(),
                })
                .collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Record capacity (slots).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records ever published (wraparound does not reset this).
    pub fn published(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Publish one record, overwriting the oldest slot. Single-writer:
    /// concurrent `publish` calls must be externally serialized (the
    /// sampler thread is the only writer in the serving layer).
    ///
    /// The slot's sequence number encodes which *lap* of the ring wrote
    /// it (`2·lap + 1` while the write is in progress, `2·lap + 2` once
    /// consistent), so a reader can verify not just that a record is
    /// untorn but that the slot holds exactly the record it asked for —
    /// even if it races the writer's `head` publication.
    pub fn publish(&self, words: &[u64]) {
        assert_eq!(words.len(), self.width, "record width mismatch");
        let head = self.head.load(Ordering::Relaxed);
        let n = self.slots.len() as u64;
        let slot = &self.slots[(head % n) as usize];
        let lap = head / n;
        slot.seq.store(2 * lap + 1, Ordering::Release); // odd: in progress
        for (w, &v) in slot.words.iter().zip(words) {
            w.store(v, Ordering::Relaxed);
        }
        slot.seq.store(2 * lap + 2, Ordering::Release); // even: consistent
        self.head.store(head + 1, Ordering::Release);
    }

    /// Read the record at global index `i`, or `None` if it was never
    /// published, has been overwritten, or the writer was mid-overwrite.
    pub fn read(&self, i: u64) -> Option<Vec<u64>> {
        let head = self.head.load(Ordering::Acquire);
        let n = self.slots.len() as u64;
        if i >= head {
            return None;
        }
        let slot = &self.slots[(i % n) as usize];
        let expect = 2 * (i / n) + 2; // this record's consistent sequence
        let s1 = slot.seq.load(Ordering::Acquire);
        if s1 != expect {
            return None; // overwritten (or being overwritten) by a later lap
        }
        let out: Vec<u64> = slot.words.iter().map(|w| w.load(Ordering::Relaxed)).collect();
        fence(Ordering::Acquire);
        if slot.seq.load(Ordering::Acquire) != expect {
            return None; // the writer lapped us mid-read
        }
        Some(out)
    }

    /// The newest up-to-`k` records, newest first, skipping any slot the
    /// writer overwrote mid-read. Each entry is `(global index, words)`.
    pub fn recent(&self, k: usize) -> Vec<(u64, Vec<u64>)> {
        let head = self.head.load(Ordering::Acquire);
        let mut out = Vec::new();
        let lo = head.saturating_sub((k.min(self.slots.len())) as u64);
        for i in (lo..head).rev() {
            if let Some(words) = self.read(i) {
                out.push((i, words));
            }
        }
        out
    }
}

/// Words per [`TelemetrySample`] record: timestamp + served + the six
/// registry counters + two (buckets, count, sum) histogram images.
pub const SAMPLE_WIDTH: usize = 2 + 6 + 2 * (BUCKETS + 2);

/// One periodic metrics observation: a monotonic timestamp, the
/// server-side `served` counter, and the engine's full
/// [`MetricsSnapshot`], flattened to [`SAMPLE_WIDTH`] words for the ring.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TelemetrySample {
    /// Monotonic microseconds since the sampler started (never a wall
    /// clock — samples are only ever compared on the host that took them).
    pub t_us: u64,
    /// Server-side successful responses at sample time.
    pub served: u64,
    /// The engine's counters and histograms at sample time.
    pub snapshot: MetricsSnapshot,
}

impl TelemetrySample {
    /// Flatten to the ring's fixed-width word layout.
    pub fn to_words(&self) -> Vec<u64> {
        let mut w = Vec::with_capacity(SAMPLE_WIDTH);
        w.push(self.t_us);
        w.push(self.served);
        let s = &self.snapshot;
        w.extend_from_slice(&[
            s.queries,
            s.cache_hits,
            s.cache_misses,
            s.deadline_exceeded,
            s.budget_exhausted,
            s.shard_unavailable,
        ]);
        for h in [&s.latency_us, &s.expansions] {
            let mut buckets = h.buckets.clone();
            buckets.resize(BUCKETS, 0);
            w.extend_from_slice(&buckets);
            w.push(h.count);
            w.push(h.sum);
        }
        debug_assert_eq!(w.len(), SAMPLE_WIDTH);
        w
    }

    /// Rebuild from the ring's word layout (`None` on width mismatch).
    pub fn from_words(words: &[u64]) -> Option<Self> {
        if words.len() != SAMPLE_WIDTH {
            return None;
        }
        let histogram = |w: &[u64]| HistogramSnapshot {
            buckets: w[..BUCKETS].to_vec(),
            count: w[BUCKETS],
            sum: w[BUCKETS + 1],
        };
        let h = 2 + 6;
        Some(TelemetrySample {
            t_us: words[0],
            served: words[1],
            snapshot: MetricsSnapshot {
                queries: words[2],
                cache_hits: words[3],
                cache_misses: words[4],
                deadline_exceeded: words[5],
                budget_exhausted: words[6],
                shard_unavailable: words[7],
                latency_us: histogram(&words[h..h + BUCKETS + 2]),
                expansions: histogram(&words[h + BUCKETS + 2..]),
            },
        })
    }
}

/// Bucket-wise difference of two histogram images taken from the same
/// live histogram at different times. The counters are monotone, so the
/// saturating subtraction only engages if a torn pair slipped through —
/// the delta stays well-formed either way.
fn histogram_delta(newer: &HistogramSnapshot, older: &HistogramSnapshot) -> HistogramSnapshot {
    let mut buckets = vec![0u64; newer.buckets.len().max(older.buckets.len())];
    for (i, b) in buckets.iter_mut().enumerate() {
        let n = newer.buckets.get(i).copied().unwrap_or(0);
        let o = older.buckets.get(i).copied().unwrap_or(0);
        *b = n.saturating_sub(o);
    }
    HistogramSnapshot {
        buckets,
        count: newer.count.saturating_sub(older.count),
        sum: newer.sum.saturating_sub(older.sum),
    }
}

/// The change between two [`TelemetrySample`]s: windowed counters and
/// windowed histograms, from which `STATS WINDOW` derives rates and
/// last-N-seconds percentiles.
#[derive(Clone, Debug, PartialEq)]
pub struct WindowDelta {
    /// Time between the two samples, in monotonic microseconds.
    pub span_us: u64,
    /// Live samples the window had available (diagnostic).
    pub samples: usize,
    /// Queries answered inside the window.
    pub queries: u64,
    /// Cache hits inside the window.
    pub cache_hits: u64,
    /// Cache misses inside the window.
    pub cache_misses: u64,
    /// Deadline trips inside the window.
    pub deadline_exceeded: u64,
    /// Expansion-budget trips inside the window.
    pub budget_exhausted: u64,
    /// Shard-unavailable refusals inside the window.
    pub shard_unavailable: u64,
    /// Server-side successful responses inside the window.
    pub served: u64,
    /// Latency observations recorded inside the window (microseconds).
    pub latency_us: HistogramSnapshot,
    /// Expansion observations recorded inside the window.
    pub expansions: HistogramSnapshot,
}

impl WindowDelta {
    /// Queries per second over the window (0 for an empty window).
    pub fn qps(&self) -> f64 {
        if self.span_us == 0 {
            0.0
        } else {
            self.queries as f64 / (self.span_us as f64 / 1e6)
        }
    }

    /// Cache hit rate over the window (0 when the window saw no lookups).
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }
}

/// Width of one recent-query record: `(qid, wall_us)`.
const RECENT_WIDTH: usize = 2;

/// The serving layer's telemetry hub: the sample ring fed by the
/// background sampler, the recent-query ring fed per answered query, the
/// in-flight gauge, and the query-ID allocator's shadow for `TOP`.
pub struct Telemetry {
    /// Sampler period in milliseconds (0 = sampler disabled; the rings
    /// still exist so `TOP` can report recent queries and in-flight).
    pub interval_ms: u64,
    ring: SampleRing,
    recent: SampleRing,
    in_flight: InFlight,
}

impl Telemetry {
    /// A telemetry hub whose sample ring holds `capacity` periodic
    /// samples and whose recent-query ring remembers the last
    /// `recent_capacity` answered queries.
    pub fn new(interval_ms: u64, capacity: usize, recent_capacity: usize) -> Self {
        Telemetry {
            interval_ms,
            ring: SampleRing::new(capacity, SAMPLE_WIDTH),
            recent: SampleRing::new(recent_capacity, RECENT_WIDTH),
            in_flight: InFlight::new(),
        }
    }

    /// The sample ring's capacity (slots).
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// Periodic samples published so far.
    pub fn samples(&self) -> u64 {
        self.ring.published()
    }

    /// The in-flight gauge (enter per query, drop to leave).
    pub fn in_flight(&self) -> &InFlight {
        &self.in_flight
    }

    /// Publish one periodic sample (the sampler thread is the only
    /// caller — [`SampleRing::publish`] is single-writer).
    pub fn record_sample(&self, sample: &TelemetrySample) {
        self.ring.publish(&sample.to_words());
    }

    /// Note one answered query for `TOP`'s "slowest recent" view.
    /// Serialized by the caller's response path per connection; concurrent
    /// writers could interleave slots, so the serving layer funnels this
    /// through the single statistics path per query completion. Losing a
    /// record under a torn race costs a diagnostic, never an answer.
    pub fn note_query(&self, qid: u64, wall_us: u64) {
        self.recent.publish(&[qid, wall_us]);
    }

    /// The slowest of the recently answered queries, as `(qid, wall_us)`.
    pub fn slowest_recent(&self) -> Option<(u64, u64)> {
        self.recent
            .recent(self.recent.capacity())
            .into_iter()
            .map(|(_, w)| (w[0], w[1]))
            .max_by_key(|&(_, wall)| wall)
    }

    /// The windowed delta covering (up to) the last `window_us`
    /// microseconds: newest live sample minus the newest sample at least
    /// `window_us` older (clamped to the oldest live sample when the ring
    /// does not reach back that far). `None` until two samples exist.
    pub fn window(&self, window_us: u64) -> Option<WindowDelta> {
        let live = self.ring.recent(self.ring.capacity());
        let newest = live.first().and_then(|(_, w)| TelemetrySample::from_words(w))?;
        let cutoff = newest.t_us.saturating_sub(window_us);
        let mut base: Option<TelemetrySample> = None;
        // `live` is newest-first; walk back until a sample is old enough.
        for (_, words) in live.iter().skip(1) {
            let Some(s) = TelemetrySample::from_words(words) else {
                continue;
            };
            let old_enough = s.t_us <= cutoff;
            base = Some(s);
            if old_enough {
                break;
            }
        }
        let base = base?;
        Some(WindowDelta {
            span_us: newest.t_us.saturating_sub(base.t_us),
            samples: live.len(),
            queries: newest.snapshot.queries.saturating_sub(base.snapshot.queries),
            cache_hits: newest.snapshot.cache_hits.saturating_sub(base.snapshot.cache_hits),
            cache_misses: newest.snapshot.cache_misses.saturating_sub(base.snapshot.cache_misses),
            deadline_exceeded: newest
                .snapshot
                .deadline_exceeded
                .saturating_sub(base.snapshot.deadline_exceeded),
            budget_exhausted: newest
                .snapshot
                .budget_exhausted
                .saturating_sub(base.snapshot.budget_exhausted),
            shard_unavailable: newest
                .snapshot
                .shard_unavailable
                .saturating_sub(base.snapshot.shard_unavailable),
            served: newest.served.saturating_sub(base.served),
            latency_us: histogram_delta(&newest.snapshot.latency_us, &base.snapshot.latency_us),
            expansions: histogram_delta(&newest.snapshot.expansions, &base.snapshot.expansions),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t_us: u64, queries: u64, latencies: &[u64]) -> TelemetrySample {
        let reg = crate::metrics::MetricsRegistry::new();
        reg.queries.add(queries);
        for &v in latencies {
            reg.latency_us.record(v);
        }
        TelemetrySample { t_us, served: queries, snapshot: reg.snapshot() }
    }

    #[test]
    fn query_ids_are_dense_from_one() {
        let gen = QueryIdGen::new();
        assert_eq!(gen.last(), 0);
        assert_eq!(gen.next(), 1);
        assert_eq!(gen.next(), 2);
        assert_eq!(gen.last(), 2);
    }

    #[test]
    fn in_flight_guard_survives_unwind() {
        let g = InFlight::new();
        {
            let _a = g.enter();
            let _b = g.enter();
            assert_eq!(g.current(), 2);
        }
        assert_eq!(g.current(), 0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = g.enter();
            panic!("boom");
        }));
        assert!(caught.is_err());
        assert_eq!(g.current(), 0, "the guard decrements on unwind");
    }

    #[test]
    fn sample_round_trips_through_the_word_layout() {
        let s = sample(1_000_000, 42, &[15, 1500, 90_000]);
        let words = s.to_words();
        assert_eq!(words.len(), SAMPLE_WIDTH);
        assert_eq!(TelemetrySample::from_words(&words), Some(s));
        assert_eq!(TelemetrySample::from_words(&words[1..]), None);
    }

    #[test]
    fn ring_wraparound_keeps_only_the_newest_records() {
        // The sampler outlives the window: a 4-slot ring absorbing 10
        // publishes serves exactly the last 4, and older indices read
        // back as gone, not as stale data.
        let ring = SampleRing::new(4, 3);
        for i in 0..10u64 {
            ring.publish(&[i, i * 10, i * 100]);
        }
        assert_eq!(ring.published(), 10);
        let live = ring.recent(10);
        assert_eq!(live.len(), 4);
        assert_eq!(live[0], (9, vec![9, 90, 900]), "newest first");
        assert_eq!(live[3], (6, vec![6, 60, 600]));
        assert_eq!(ring.read(5), None, "overwritten records are unreadable");
        assert_eq!(ring.read(11), None, "future records are unreadable");
    }

    #[test]
    fn ring_readers_never_observe_torn_records() {
        // One writer races many readers; every successful read must be
        // one of the published records, never a mix of two.
        let ring = std::sync::Arc::new(SampleRing::new(4, 2));
        let writer = {
            let ring = ring.clone();
            std::thread::spawn(move || {
                for i in 1..=50_000u64 {
                    ring.publish(&[i, !i]);
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let ring = ring.clone();
                std::thread::spawn(move || {
                    for _ in 0..20_000 {
                        for (_, w) in ring.recent(4) {
                            assert_eq!(w[1], !w[0], "torn record escaped the seqlock");
                        }
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
    }

    #[test]
    fn window_delta_subtracts_histograms_bucketwise() {
        // One live registry sampled at three points in time: samples are
        // cumulative images, the window delta recovers the per-window
        // observations.
        let reg = crate::metrics::MetricsRegistry::new();
        let t = Telemetry::new(100, 8, 8);
        let snap = |t_us: u64| TelemetrySample {
            t_us,
            served: reg.queries.get(),
            snapshot: reg.snapshot(),
        };
        t.record_sample(&snap(0));
        reg.queries.add(10);
        for _ in 0..10 {
            reg.latency_us.record(100);
        }
        t.record_sample(&snap(1_000_000));
        reg.queries.add(20);
        for _ in 0..20 {
            reg.latency_us.record(100_000);
        }
        t.record_sample(&snap(2_000_000));
        // A 1-second window reaches exactly one sample back: only the
        // twenty slow queries are inside it.
        let w = t.window(1_000_000).expect("two samples");
        assert_eq!(w.queries, 20);
        assert_eq!(w.latency_us.count, 20);
        assert!(w.latency_us.percentile(0.5) >= 100_000);
        assert!((w.qps() - 20.0).abs() < 1e-9);
        // A 2-second window reaches the boot sample: all thirty queries,
        // and the ten fast ones reappear at the low quantiles.
        let w = t.window(2_000_000).expect("covers both");
        assert_eq!(w.queries, 30);
        assert_eq!(w.latency_us.count, 30);
        assert!(w.latency_us.percentile(0.2) < 1_000);
    }

    #[test]
    fn window_needs_two_samples_and_clamps_to_the_oldest() {
        let t = Telemetry::new(100, 4, 4);
        assert!(t.window(1_000_000).is_none(), "empty ring");
        t.record_sample(&sample(0, 0, &[]));
        assert!(t.window(1_000_000).is_none(), "one sample is no window");
        t.record_sample(&sample(500_000, 5, &[10; 5]));
        let w = t.window(60_000_000).expect("clamps to the oldest sample");
        assert_eq!(w.queries, 5);
        assert_eq!(w.span_us, 500_000);
    }

    #[test]
    fn slowest_recent_query_wins_by_wall_time() {
        let t = Telemetry::new(100, 4, 4);
        assert_eq!(t.slowest_recent(), None);
        t.note_query(1, 500);
        t.note_query(2, 90_000);
        t.note_query(3, 1_200);
        assert_eq!(t.slowest_recent(), Some((2, 90_000)));
        // Wraparound: once qid 2 is overwritten it stops being reported.
        for qid in 4..=7 {
            t.note_query(qid, 10 + qid);
        }
        assert_eq!(t.slowest_recent(), Some((7, 17)));
    }
}
