//! The owned value tree shared by `serde` and `serde_json`.

use std::fmt;

/// A JSON-like value. Integers keep their signedness so `u64::MAX`
/// (and `usize::MAX` sentinels in configs) survive round-trips exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (only used for negative values on parse).
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object as an ordered list of key/value pairs (insertion order
    /// preserved; lookups are linear — fine at config scale).
    Object(Vec<(String, Value)>),
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

impl Value {
    /// Human label for error messages.
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Build a "expected X, found Y" error for this value.
    pub fn type_error(&self, expected: &str) -> DeError {
        DeError(format!("expected {expected}, found {}", self.kind()))
    }

    /// As `u64` if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(x) => Some(x),
            Value::I64(x) => u64::try_from(x).ok(),
            Value::F64(x) if x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64 => Some(x as u64),
            _ => None,
        }
    }

    /// As `i64` if losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(x) => Some(x),
            Value::U64(x) => i64::try_from(x).ok(),
            Value::F64(x) if x.fract() == 0.0 && x >= i64::MIN as f64 && x <= i64::MAX as f64 => {
                Some(x as i64)
            }
            _ => None,
        }
    }

    /// As `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(x) => Some(x),
            Value::I64(x) => Some(x as f64),
            Value::U64(x) => Some(x as f64),
            _ => None,
        }
    }

    /// As boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// As string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// As array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// As object entry list.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Is this `null`?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Is this an array?
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// Is this an object?
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// Is this a string?
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// Is this a number?
    pub fn is_number(&self) -> bool {
        matches!(self, Value::I64(_) | Value::U64(_) | Value::F64(_))
    }

    /// Field lookup on objects (`None` for missing key or non-object).
    pub fn get_field(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// `serde_json::Value::get` compatibility: same as [`Self::get_field`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.get_field(key)
    }
}

impl fmt::Display for Value {
    /// Compact JSON rendering (matches `serde_json::to_string`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_json(self, f, None, 0)
    }
}

impl Value {
    /// Pretty JSON rendering with two-space indent
    /// (matches `serde_json::to_string_pretty`).
    pub fn to_json_pretty(&self) -> String {
        struct Pretty<'a>(&'a Value);
        impl fmt::Display for Pretty<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write_json(self.0, f, Some(2), 0)
            }
        }
        Pretty(self).to_string()
    }
}

fn write_json(
    v: &Value,
    f: &mut fmt::Formatter<'_>,
    indent: Option<usize>,
    depth: usize,
) -> fmt::Result {
    let newline = |f: &mut fmt::Formatter<'_>, depth: usize| -> fmt::Result {
        match indent {
            Some(width) => write!(f, "\n{:1$}", "", width * depth),
            None => Ok(()),
        }
    };
    match v {
        Value::Null => write!(f, "null"),
        Value::Bool(b) => write!(f, "{b}"),
        Value::I64(x) => write!(f, "{x}"),
        Value::U64(x) => write!(f, "{x}"),
        Value::F64(x) => write_f64(*x, f),
        Value::String(s) => write_escaped(s, f),
        Value::Array(items) => {
            if items.is_empty() {
                return write!(f, "[]");
            }
            write!(f, "[")?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                newline(f, depth + 1)?;
                write_json(item, f, indent, depth + 1)?;
            }
            newline(f, depth)?;
            write!(f, "]")
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                return write!(f, "{{}}");
            }
            write!(f, "{{")?;
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                newline(f, depth + 1)?;
                write_escaped(key, f)?;
                write!(f, ":")?;
                if indent.is_some() {
                    write!(f, " ")?;
                }
                write_json(val, f, indent, depth + 1)?;
            }
            newline(f, depth)?;
            write!(f, "}}")
        }
    }
}

fn write_f64(x: f64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if !x.is_finite() {
        // JSON has no NaN/inf; serde_json refuses to emit them.
        write!(f, "null")
    } else if x.fract() == 0.0 && x.abs() < 1e16 {
        // Keep a trailing `.0` so the value re-parses as a float.
        write!(f, "{x:.1}")
    } else {
        write!(f, "{x}")
    }
}

fn write_escaped(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            '\u{08}' => write!(f, "\\b")?,
            '\u{0c}' => write!(f, "\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get_field(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        self.as_array().and_then(|a| a.get(i)).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}
impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}
impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}
impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}
impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}
impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}
impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::F64(x)
    }
}
macro_rules! from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(x: $t) -> Value { Value::U64(x as u64) }
        }
    )*};
}
from_uint!(u8, u16, u32, u64, usize);
macro_rules! from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(x: $t) -> Value { Value::I64(x as i64) }
        }
    )*};
}
from_int!(i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_missing_field_is_null() {
        let v = Value::Object(vec![("a".into(), Value::U64(1))]);
        assert_eq!(v["a"].as_u64(), Some(1));
        assert!(v["missing"].is_null());
    }

    #[test]
    fn display_renders_compact_json() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(1)),
            ("b".into(), Value::Array(vec![Value::F64(1.5), Value::Null])),
            ("c".into(), Value::String("x\"y".into())),
        ]);
        assert_eq!(v.to_string(), r#"{"a":1,"b":[1.5,null],"c":"x\"y"}"#);
    }

    #[test]
    fn pretty_renders_indented_json() {
        let v = Value::Object(vec![("x".into(), Value::U64(1))]);
        assert_eq!(v.to_json_pretty(), "{\n  \"x\": 1\n}");
    }

    #[test]
    fn whole_floats_keep_decimal_point() {
        assert_eq!(Value::F64(2.0).to_string(), "2.0");
        assert_eq!(Value::F64(2.5).to_string(), "2.5");
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(Value::U64(5).as_i64(), Some(5));
        assert_eq!(Value::I64(-5).as_u64(), None);
        assert_eq!(Value::F64(2.0).as_u64(), Some(2));
        assert_eq!(Value::F64(2.5).as_u64(), None);
    }
}
