//! Criterion benchmarks of full searches: the four Central Graph engines
//! and the BANKS baselines on one synthetic KB, plus the two algorithm
//! stages in isolation (an ablation of the lock-free design: the
//! matrix engines pay extraction in the top-down stage, CPU-Par-d pays
//! locks in the bottom-up stage).

use banks::{BanksI, BanksII, BanksParams};
use central::engine::{DynParEngine, GpuStyleEngine, KeywordSearchEngine, ParCpuEngine, SeqEngine};
use central::SearchParams;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use datagen::synthetic::SyntheticConfig;
use textindex::{InvertedIndex, ParsedQuery};

struct Fixture {
    graph: kgraph::KnowledgeGraph,
    queries: Vec<ParsedQuery>,
    params: SearchParams,
}

fn fixture() -> Fixture {
    let mut cfg = SyntheticConfig::tiny(3);
    cfg.num_entities = 4000;
    let ds = cfg.generate();
    let index = InvertedIndex::build(&ds.graph);
    let mut workload = datagen::QueryWorkload::new(50);
    let queries: Vec<ParsedQuery> =
        workload.batch(6, 4).iter().map(|q| ParsedQuery::parse(&index, q)).collect();
    let a = kgraph::sampling::estimate_average_distance_sources(&ds.graph, 8, 16, 24, 1).mean;
    Fixture {
        graph: ds.graph,
        queries,
        params: SearchParams::default().with_average_distance(a),
    }
}

fn bench_engines(c: &mut Criterion) {
    let f = fixture();
    let mut g = c.benchmark_group("search_4k_nodes_knum6");
    let engines: Vec<Box<dyn KeywordSearchEngine>> = vec![
        Box::new(SeqEngine::new()),
        Box::new(ParCpuEngine::new(4)),
        Box::new(GpuStyleEngine::new(4)),
        Box::new(DynParEngine::new(4)),
    ];
    for e in &engines {
        g.bench_function(e.name(), |b| {
            b.iter(|| {
                for q in &f.queries {
                    black_box(e.search(&f.graph, q, &f.params));
                }
            })
        });
    }
    let banks_params = BanksParams::default().with_node_budget(100_000);
    g.bench_function("BANKS-I", |b| {
        let e = BanksI::new();
        b.iter(|| {
            for q in &f.queries {
                black_box(e.search(&f.graph, q, &banks_params));
            }
        })
    });
    g.bench_function("BANKS-II", |b| {
        let e = BanksII::new();
        b.iter(|| {
            for q in &f.queries {
                black_box(e.search(&f.graph, q, &banks_params));
            }
        })
    });
    g.finish();
}

fn bench_alpha_ablation(c: &mut Criterion) {
    // Ablation: how α (and with it, how early summary hubs open up)
    // changes total search work (the mechanism behind Exp-3).
    let f = fixture();
    let mut g = c.benchmark_group("alpha_ablation");
    let engine = SeqEngine::new();
    for alpha in [0.05f32, 0.4] {
        let params = f.params.clone().with_alpha(alpha);
        g.bench_function(format!("alpha_{alpha}"), |b| {
            b.iter(|| {
                for q in &f.queries {
                    black_box(engine.search(&f.graph, q, &params));
                }
            })
        });
    }
    g.finish();
}

fn bench_level_cover_ablation(c: &mut Criterion) {
    // Ablation: the level-cover pruning stage (Sec. V-C) on vs off.
    let f = fixture();
    let mut g = c.benchmark_group("level_cover_ablation");
    let engine = SeqEngine::new();
    for cover in [true, false] {
        let params = SearchParams { level_cover: cover, ..f.params.clone() };
        g.bench_function(format!("level_cover_{cover}"), |b| {
            b.iter(|| {
                for q in &f.queries {
                    black_box(engine.search(&f.graph, q, &params));
                }
            })
        });
    }
    g.finish();
}

fn bench_enqueue_strategies(c: &mut Criterion) {
    // The paper's CPU finding: sequential frontier enqueue beats parallel
    // compaction on CPU (Sec. V-B, "Enqueuing frontiers").
    use central::bottom_up::{enqueue_parallel_compaction, enqueue_sequential};
    use central::state::SearchState;
    let f = fixture();
    let index = InvertedIndex::build(&f.graph);
    let q = ParsedQuery::parse(&index, "machine learning");
    let pool = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
    let mut g = c.benchmark_group("enqueue");
    g.bench_function("sequential_scan", |b| {
        let state = SearchState::new(f.graph.num_nodes(), &q);
        let mut out = Vec::new();
        b.iter(|| {
            // re-arm a spread of frontier flags, then drain
            for v in (0..f.graph.num_nodes() as u32).step_by(7) {
                state.mark_frontier(v);
            }
            enqueue_sequential(&state, &mut out);
            black_box(out.len())
        })
    });
    g.bench_function("parallel_compaction", |b| {
        let state = SearchState::new(f.graph.num_nodes(), &q);
        let mut out = Vec::new();
        b.iter(|| {
            for v in (0..f.graph.num_nodes() as u32).step_by(7) {
                state.mark_frontier(v);
            }
            enqueue_parallel_compaction(&pool, &state, &mut out, 4096);
            black_box(out.len())
        })
    });
    g.finish();
}

fn bench_dedup_ablation(c: &mut Criterion) {
    // Ablation: the containment-dedup pass of the final selection.
    let f = fixture();
    let mut g = c.benchmark_group("dedup_ablation");
    let engine = SeqEngine::new();
    for dedup in [true, false] {
        let params = SearchParams { dedup_contained: dedup, ..f.params.clone() };
        g.bench_function(format!("dedup_{dedup}"), |b| {
            b.iter(|| {
                for q in &f.queries {
                    black_box(engine.search(&f.graph, q, &params));
                }
            })
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(5))
        .warm_up_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_engines, bench_alpha_ablation, bench_dedup_ablation,
        bench_level_cover_ablation, bench_enqueue_strategies
}
criterion_main!(benches);
