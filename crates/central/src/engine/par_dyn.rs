//! CPU-Par-d: the paper's lock-based, dynamic-memory baseline engine.
//!
//! This is the design the lock-free matrix engines are validated against
//! (Exp-1/Exp-4): no node–keyword matrix, per-node state allocated on
//! demand behind a `parking_lot` mutex, a locked shared frontier queue,
//! and hitting-path predecessors recorded *during* search — so the
//! top-down stage needs no extraction (Theorem V.4 unused), only
//! level-cover pruning and ranking. The paper's finding, which this
//! reproduction confirms, is that the lock traffic during expansion
//! overwhelms the saved extraction time.

use crate::activation::{ActivationConfig, ActivationMap};
use crate::budget::{BudgetTracker, QueryBudget};
use crate::engine::{build_pool, KeywordSearchEngine, SearchOutcome, SearchStats};
use crate::error::SearchError;
use crate::model::{CentralGraph, INFINITE_LEVEL};
use crate::profile::PhaseProfile;
use crate::session::SearchSession;
use crate::state::HitLevels;
use crate::top_down::{self, Extraction};
use crate::trace::{PhaseMillis, QueryTrace, TraceLevelRecord};
use crate::SearchParams;
use kgraph::{KnowledgeGraph, NodeId};
use parking_lot::Mutex;
use rayon::prelude::*;
use std::time::Instant;
use textindex::ParsedQuery;

/// Per-node dynamically allocated search record.
#[derive(Default)]
struct DynNode {
    /// Query epoch this record belongs to; a mismatching stamp means the
    /// record is leftover from an earlier session query and reads as empty
    /// (it is cleared — capacity kept — the first time the node is locked
    /// in the new epoch).
    stamp: u32,
    /// Sparse hitting levels: `(keyword, level)`.
    hits: Vec<(u16, u8)>,
    /// Recorded hitting-path predecessors: `(keyword, predecessor)`.
    preds: Vec<(u16, u32)>,
    /// Already queued for the next level (avoids duplicate enqueue).
    queued: bool,
    /// Identification depth + 1 if central (0 = not central).
    central: u8,
}

impl DynNode {
    fn hit_level(&self, i: usize) -> u8 {
        self.hits
            .iter()
            .find(|&&(k, _)| k as usize == i)
            .map_or(INFINITE_LEVEL, |&(_, l)| l)
    }
}

/// Shared locked state of CPU-Par-d searches, reusable across a session's
/// queries the same way the matrix engines' [`crate::state::SearchState`]
/// is: a query-epoch counter plus per-node stamps. Every node access goes
/// through [`DynState::node`], which freshens a stale record under its
/// lock before returning it.
pub(crate) struct DynState {
    epoch: u32,
    nodes: Vec<Mutex<DynNode>>,
    next_frontier: Mutex<Vec<u32>>,
    /// Epoch stamp per node: current ⇔ keyword node. Written only under
    /// `&mut` in [`DynState::begin_query`].
    is_keyword: Vec<u32>,
    q: usize,
}

impl DynState {
    /// An empty state; arm it with [`DynState::begin_query`].
    pub(crate) fn empty() -> Self {
        DynState {
            epoch: 0,
            nodes: Vec::new(),
            next_frontier: Mutex::new(Vec::new()),
            is_keyword: Vec::new(),
            q: 0,
        }
    }

    /// Re-arm for a new query: bump the epoch (logically clearing every
    /// node record), grow the node table if needed, and seed the sources
    /// under locks (the paper: CPU-Par-d "has to add a lock to each node
    /// to record which keyword it has").
    fn begin_query(&mut self, n: usize, query: &ParsedQuery) {
        self.epoch = self.epoch.checked_add(1).unwrap_or_else(|| {
            // Epoch wrap after 2^32 queries: clear every stamp once.
            for node in &mut self.nodes {
                *node.get_mut() = DynNode::default();
            }
            self.is_keyword.fill(0);
            1
        });
        self.q = query.num_keywords();
        if self.nodes.len() < n {
            self.nodes.resize_with(n, || Mutex::new(DynNode::default()));
            self.is_keyword.resize(n, 0);
        }
        self.next_frontier.get_mut().clear();
        for (i, group) in query.groups.iter().enumerate() {
            for &v in &group.nodes {
                self.is_keyword[v.index()] = self.epoch;
                let mut node = self.node(v.0);
                node.hits.push((i as u16, 0));
                if !node.queued {
                    node.queued = true;
                    drop(node);
                    self.next_frontier.lock().push(v.0);
                }
            }
        }
    }

    /// Lock node `v`, freshening a stale record (clear, keep capacity) so
    /// callers always see current-epoch state.
    fn node(&self, v: u32) -> parking_lot::MutexGuard<'_, DynNode> {
        let mut node = self.nodes[v as usize].lock();
        if node.stamp != self.epoch {
            node.stamp = self.epoch;
            node.hits.clear();
            node.preds.clear();
            node.queued = false;
            node.central = 0;
        }
        node
    }

    /// Re-queue a frontier to retry at the next level.
    fn requeue(&self, f: u32) {
        let mut node = self.node(f);
        if !node.queued {
            node.queued = true;
            drop(node);
            self.next_frontier.lock().push(f);
        }
    }
}

impl HitLevels for DynState {
    fn num_keywords(&self) -> usize {
        self.q
    }
    fn hit(&self, v: u32, i: usize) -> u8 {
        self.node(v).hit_level(i)
    }
    fn is_keyword_node(&self, v: u32) -> bool {
        self.is_keyword[v as usize] == self.epoch
    }
    fn central_depth(&self, v: u32) -> Option<u8> {
        match self.node(v).central {
            0 => None,
            d => Some(d - 1),
        }
    }
}

/// Lock-based dynamic-memory engine (the paper's **CPU-Par-d**).
pub struct DynParEngine {
    pool: rayon::ThreadPool,
    threads: usize,
}

impl DynParEngine {
    /// Engine with `threads` workers.
    pub fn new(threads: usize) -> Self {
        DynParEngine { pool: build_pool(threads), threads: threads.max(1) }
    }

    /// Configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl KeywordSearchEngine for DynParEngine {
    fn name(&self) -> &'static str {
        "CPU-Par-d"
    }

    fn try_search_session(
        &self,
        session: &mut SearchSession,
        graph: &KnowledgeGraph,
        query: &ParsedQuery,
        params: &SearchParams,
        budget: &QueryBudget,
    ) -> Result<SearchOutcome, SearchError> {
        if let Err(e) = params.validate() {
            panic!("invalid search parameters: {e}");
        }
        let tracker = if params.trace.enabled() {
            budget.start_counting()
        } else {
            budget.start()
        };
        tracker.checkpoint()?;
        #[cfg(feature = "fault-inject")]
        crate::fault::inject(query, &tracker)?;
        if query.is_empty() {
            let mut out = SearchOutcome::default();
            if params.trace.enabled() {
                out.trace = Some(Box::new(QueryTrace {
                    engine: self.name().to_string(),
                    ..QueryTrace::default()
                }));
            }
            return Ok(out);
        }
        let mut profile = PhaseProfile::default();

        // Arm (or lazily materialize) the session's lock-based state.
        let t = Instant::now();
        let state = session.dyn_state.get_or_insert_with(DynState::empty);
        state.begin_query(graph.num_nodes(), query);
        session.queries_run += 1;
        let state = &*state;
        profile.init = t.elapsed();

        let explicit = params.explicit_activation.clone();
        let act = match &explicit {
            Some(levels) => ActivationMap::Explicit(levels),
            None => ActivationMap::Computed {
                graph,
                config: ActivationConfig {
                    alpha: params.alpha,
                    average_distance: params.average_distance,
                },
            },
        };

        let max_level = params.max_level.min(254);
        let mut central_nodes: Vec<(NodeId, u8)> = Vec::new();
        let mut peak_frontier = 0usize;
        let mut trace: Vec<crate::bottom_up::LevelTrace> = Vec::new();
        let mut records: Option<Vec<TraceLevelRecord>> = params.trace.enabled().then(Vec::new);
        let mut hit_level_cap = false;
        let mut level: u8 = 0;
        loop {
            tracker.checkpoint()?;
            // Enqueue: swap out the locked queue, clear queued flags.
            let t = Instant::now();
            let mut frontiers = std::mem::take(&mut *state.next_frontier.lock());
            frontiers.sort_unstable();
            for &f in &frontiers {
                state.node(f).queued = false;
            }
            profile.enqueue += t.elapsed();
            peak_frontier = peak_frontier.max(frontiers.len());
            if frontiers.is_empty() {
                break;
            }

            // Identify central nodes (locked reads of the sparse hit lists).
            let t = Instant::now();
            let before = central_nodes.len();
            for &f in &frontiers {
                let mut node = state.node(f);
                if node.central == 0 && node.hits.len() == state.q {
                    node.central = level + 1;
                    central_nodes.push((NodeId(f), level));
                }
            }
            trace.push(crate::bottom_up::LevelTrace {
                level,
                frontier: frontiers.len(),
                identified: central_nodes.len() - before,
            });
            if let Some(recs) = records.as_mut() {
                // Locked scans, paid only on traced queries: keyword-hit
                // cells first covered here and activation-gated frontiers.
                let mut new_hits = 0usize;
                let mut activation_deferred = 0usize;
                for &f in &frontiers {
                    new_hits += state.node(f).hits.iter().filter(|&&(_, l)| l == level).count();
                    if act.level(NodeId(f)) > level {
                        activation_deferred += 1;
                    }
                }
                recs.push(TraceLevelRecord {
                    level: u32::from(level),
                    frontier: frontiers.len(),
                    identified: central_nodes.len() - before,
                    new_hits,
                    activation_deferred,
                    expansions: 0,
                    budget_remaining: tracker.remaining(),
                });
            }
            profile.identify += t.elapsed();
            if central_nodes.len() >= params.top_k || level >= max_level {
                hit_level_cap = central_nodes.len() < params.top_k;
                break;
            }

            // Expansion with per-node locks, parallel over frontiers.
            let charged_before = if records.is_some() {
                tracker.expansions()
            } else {
                0
            };
            let t = Instant::now();
            let state_ref = state;
            let act_ref = &act;
            let tracker_ref = &tracker;
            self.pool.install(|| {
                frontiers.par_iter().for_each(|&f| {
                    expand_locked(graph, state_ref, act_ref, f, level, tracker_ref);
                });
            });
            profile.expansion += t.elapsed();
            if let Some(last) = records.as_mut().and_then(|r| r.last_mut()) {
                last.expansions = tracker.expansions() - charged_before;
                last.budget_remaining = tracker.remaining();
            }
            level += 1;
        }

        // Top-down: no extraction — assemble per-keyword DAGs from the
        // recorded predecessors, then the shared pruning/ranking.
        let full_candidates = central_nodes.len();
        central_nodes.truncate(params.max_candidates);
        let _ = full_candidates;
        let t = Instant::now();
        let state_ref = state;
        let tracker_ref = &tracker;
        let candidates: Option<Vec<CentralGraph>> = self.pool.install(|| {
            central_nodes
                .par_iter()
                .map(|&(c, d)| {
                    if tracker_ref.should_stop() {
                        return None;
                    }
                    let e = assemble_from_records(state_ref, c.0, d);
                    Some(top_down::prune_and_score(graph, state_ref, &e, params))
                })
                .collect()
        });
        let Some(candidates) = candidates else {
            return Err(tracker
                .error()
                .expect("a stopped top-down stage implies a tripped budget"));
        };
        let answers = top_down::select_top_k(candidates, params);
        profile.top_down += t.elapsed();

        let query_trace = records.map(|levels| {
            Box::new(QueryTrace {
                engine: self.name().to_string(),
                keywords: query.num_keywords(),
                total_expansions: tracker.expansions(),
                terminated: hit_level_cap,
                levels,
                cache: None,
                session_id: None,
                session_queries: None,
                batch_id: None,
                co_batched: None,
                phase_ms: PhaseMillis::from(&profile),
                qid: None,
                cache_source_qid: None,
                shard_timelines: None,
            })
        });
        Ok(SearchOutcome {
            answers,
            profile,
            stats: SearchStats {
                last_level: level,
                central_candidates: central_nodes.len(),
                peak_frontier,
                trace,
            },
            trace: query_trace,
        })
    }
}

/// Expansion of one frontier with per-node locking (the paper's Alg. 2
/// semantics, lock-based variant).
fn expand_locked(
    graph: &KnowledgeGraph,
    state: &DynState,
    act: &ActivationMap<'_>,
    f: u32,
    level: u8,
    tracker: &BudgetTracker,
) {
    if tracker.cancelled() {
        return;
    }
    tracker.charge(state.q as u64);
    // Copy the frontier's state out under its lock, then release before
    // touching neighbors (no nested locks ⇒ no deadlock).
    let hits: Vec<(u16, u8)> = {
        let node = state.node(f);
        if node.central != 0 {
            return;
        }
        node.hits.clone()
    };
    let vf = NodeId(f);
    if act.level(vf) > level {
        state.requeue(f);
        return;
    }
    for &(kw, hf) in &hits {
        if hf > level {
            continue;
        }
        let i = kw as usize;
        for adj in graph.neighbors(vf) {
            let n = adj.target().0;
            let n_is_kw = state.is_keyword_node(n);
            if !n_is_kw && act.level(adj.target()) > level + 1 {
                // Only an unvisited neighbor keeps the frontier alive.
                let unhit = state.node(n).hit_level(i) == INFINITE_LEVEL;
                if unhit {
                    state.requeue(f);
                }
                continue;
            }
            let mut node = state.node(n);
            match node.hit_level(i) {
                INFINITE_LEVEL => {
                    node.hits.push((kw, level + 1));
                    node.preds.push((kw, f));
                    if !node.queued {
                        node.queued = true;
                        drop(node);
                        state.next_frontier.lock().push(n);
                    }
                }
                l if l == level + 1
                    // Another shortest hitting path discovered in the same
                    // level — record the extra predecessor (multi-paths).
                    && !node.preds.contains(&(kw, f)) =>
                {
                    node.preds.push((kw, f));
                }
                _ => {}
            }
        }
    }
}

/// Build the per-keyword hitting-path DAGs of the Central Graph at `c`
/// directly from the predecessors recorded during search.
fn assemble_from_records(state: &DynState, c: u32, depth: u8) -> Extraction {
    let q = state.q;
    let mut dag_edges: Vec<Vec<(u32, u32)>> = Vec::with_capacity(q);
    let mut all_nodes: std::collections::HashSet<u32> = std::collections::HashSet::new();
    all_nodes.insert(c);
    for i in 0..q {
        let mut edges: Vec<(u32, u32)> = Vec::new();
        let mut visited: std::collections::HashSet<u32> = std::collections::HashSet::new();
        let mut stack = vec![c];
        visited.insert(c);
        while let Some(j) = stack.pop() {
            let preds: Vec<u32> = {
                let node = state.node(j);
                node.preds.iter().filter(|&&(k, _)| k as usize == i).map(|&(_, p)| p).collect()
            };
            for p in preds {
                edges.push((p, j));
                if visited.insert(p) {
                    stack.push(p);
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();
        for &(a, b) in &edges {
            all_nodes.insert(a);
            all_nodes.insert(b);
        }
        dag_edges.push(edges);
    }
    let mut nodes: Vec<u32> = all_nodes.into_iter().collect();
    nodes.sort_unstable();
    Extraction { central: c, depth, dag_edges, nodes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SeqEngine;
    use kgraph::GraphBuilder;
    use textindex::InvertedIndex;

    #[test]
    fn recorded_paths_match_theorem_v4_extraction() {
        // The key cross-validation: CPU-Par-d records hitting paths during
        // search; the matrix engines recover them from M via Theorem V.4.
        // Both must yield identical answers.
        let mut b = GraphBuilder::new();
        let a = b.add_node("a", "alpha");
        let m1 = b.add_node("m1", "one");
        let m2 = b.add_node("m2", "two");
        let z = b.add_node("z", "omega");
        let w = b.add_node("w", "omega side");
        b.add_edge(a, m1, "e");
        b.add_edge(a, m2, "e");
        b.add_edge(m1, z, "e");
        b.add_edge(m2, z, "e");
        b.add_edge(w, m1, "e");
        let g = b.build();
        let idx = InvertedIndex::build(&g);
        let q = ParsedQuery::parse(&idx, "alpha omega");
        let params = SearchParams::default().with_average_distance(2.0);
        let seq = SeqEngine::new().search(&g, &q, &params);
        let dyn_ = DynParEngine::new(2).search(&g, &q, &params);
        assert_eq!(seq.answers.len(), dyn_.answers.len());
        for (x, y) in seq.answers.iter().zip(&dyn_.answers) {
            assert_eq!(x.central, y.central);
            assert_eq!(x.nodes, y.nodes, "node sets must match at {}", x.central);
            assert_eq!(x.edges, y.edges, "hitting paths must match at {}", x.central);
            assert!((x.score - y.score).abs() < 1e-9);
        }
    }

    #[test]
    fn activation_gating_matches_matrix_engine() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a", "alpha");
        let h = b.add_node("h", "hub");
        let z = b.add_node("z", "omega");
        b.add_edge(a, h, "e");
        b.add_edge(h, z, "e");
        let g = b.build();
        let idx = InvertedIndex::build(&g);
        let q = ParsedQuery::parse(&idx, "alpha omega");
        // Delay the hub: both engines must produce the same depths.
        let params = SearchParams::default().with_explicit_activation(vec![0, 3, 0]);
        let seq = SeqEngine::new().search(&g, &q, &params);
        let dyn_ = DynParEngine::new(2).search(&g, &q, &params);
        assert_eq!(seq.answers.len(), dyn_.answers.len());
        for (x, y) in seq.answers.iter().zip(&dyn_.answers) {
            assert_eq!(x.depth, y.depth);
            assert_eq!(x.nodes, y.nodes);
        }
    }

    #[test]
    fn empty_query_short_circuits() {
        let mut b = GraphBuilder::new();
        b.add_node("a", "alpha");
        let g = b.build();
        let idx = InvertedIndex::build(&g);
        let q = ParsedQuery::parse(&idx, "missing");
        let out = DynParEngine::new(2).search(&g, &q, &SearchParams::default());
        assert!(out.answers.is_empty());
    }
}
