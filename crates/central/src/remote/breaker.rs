//! Per-shard circuit breaker: the three-state (closed / open / half-open)
//! machine that keeps the coordinator from hammering a dead worker.
//!
//! ```text
//!          consecutive confirmed failures ≥ threshold
//!   CLOSED ────────────────────────────────────────────▶ OPEN
//!     ▲                                                    │
//!     │ probe succeeds                    cooldown elapses │
//!     │                                                    ▼
//!     └───────────────────────────────────────────── HALF-OPEN
//!                         probe fails ──▶ back to OPEN (fresh cooldown)
//! ```
//!
//! Only *confirmed* worker failures move the machine: when a query RPC
//! fails, the coordinator first probes the worker out-of-band, and a
//! surviving probe attributes the failure to the query (e.g. an injected
//! fault token) rather than the shard — so a misbehaving query can never
//! open the breaker and shed its well-behaved neighbours. While OPEN, the
//! coordinator fast-fails (or degrades) without dialing; once the
//! cooldown elapses the next admission check flips to HALF-OPEN and
//! exactly one probe decides between re-closing and another cooldown.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Observable breaker state, for STATS / Prometheus.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: traffic flows, failures are counted.
    Closed,
    /// Shedding: the shard is presumed dead until the cooldown elapses.
    Open,
    /// Probation: one probe decides re-close vs. re-open.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase name (STATS `remote.breaker` entries).
    pub fn name(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }

    /// Numeric gauge encoding (0 closed, 1 half-open, 2 open).
    pub fn gauge(&self) -> f64 {
        match self {
            BreakerState::Closed => 0.0,
            BreakerState::HalfOpen => 1.0,
            BreakerState::Open => 2.0,
        }
    }
}

enum Inner {
    Closed { fails: u32 },
    Open { since: Instant },
    HalfOpen,
}

/// One shard's breaker. All methods are cheap and lock one uncontended
/// mutex; the coordinator holds one breaker per shard for the lifetime of
/// the search handle.
pub struct CircuitBreaker {
    inner: Mutex<Inner>,
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        CircuitBreaker { inner: Mutex::new(Inner::Closed { fails: 0 }) }
    }
}

impl CircuitBreaker {
    /// A fresh, closed breaker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Admission check. `true` means traffic (or a probe) may proceed;
    /// an OPEN breaker whose cooldown has elapsed flips to HALF-OPEN and
    /// admits the caller as its probation probe.
    pub fn allow(&self, cooldown: Duration) -> bool {
        let mut inner = self.inner.lock().unwrap();
        match *inner {
            Inner::Closed { .. } | Inner::HalfOpen => true,
            Inner::Open { since } => {
                if since.elapsed() >= cooldown {
                    *inner = Inner::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Record a successful interaction with the worker: HALF-OPEN
    /// re-closes, CLOSED resets its failure streak.
    pub fn record_success(&self) {
        *self.inner.lock().unwrap() = Inner::Closed { fails: 0 };
    }

    /// Record a *confirmed* worker failure (a failed probe, not a failed
    /// query). CLOSED counts toward `threshold`; HALF-OPEN re-opens with
    /// a fresh cooldown.
    pub fn record_failure(&self, threshold: u32) {
        let mut inner = self.inner.lock().unwrap();
        *inner = match *inner {
            Inner::Closed { fails } if fails + 1 < threshold => Inner::Closed { fails: fails + 1 },
            _ => Inner::Open { since: Instant::now() },
        };
    }

    /// Current state, for monitoring.
    pub fn state(&self) -> BreakerState {
        match *self.inner.lock().unwrap() {
            Inner::Closed { .. } => BreakerState::Closed,
            Inner::Open { .. } => BreakerState::Open,
            Inner::HalfOpen => BreakerState::HalfOpen,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failures_below_threshold_stay_closed() {
        let b = CircuitBreaker::new();
        b.record_failure(3);
        b.record_failure(3);
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow(Duration::from_secs(1)));
        b.record_failure(3);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(Duration::from_secs(60)), "open breaker sheds before cooldown");
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let b = CircuitBreaker::new();
        b.record_failure(2);
        b.record_success();
        b.record_failure(2);
        assert_eq!(b.state(), BreakerState::Closed, "streak was reset");
    }

    #[test]
    fn cooldown_admits_one_probation_probe() {
        let b = CircuitBreaker::new();
        b.record_failure(1);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.allow(Duration::ZERO), "elapsed cooldown flips to half-open");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Probe failure re-opens with a fresh cooldown …
        b.record_failure(1);
        assert_eq!(b.state(), BreakerState::Open);
        // … probe success after the next cooldown re-closes.
        assert!(b.allow(Duration::ZERO));
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn state_names_are_stable() {
        assert_eq!(BreakerState::Closed.name(), "closed");
        assert_eq!(BreakerState::Open.name(), "open");
        assert_eq!(BreakerState::HalfOpen.name(), "half_open");
        assert_eq!(BreakerState::Closed.gauge(), 0.0);
        assert_eq!(BreakerState::Open.gauge(), 2.0);
    }
}
