//! Per-phase wall-clock profiling.
//!
//! The paper's Exp-1 and Exp-4 (Figs. 6, 7, 9, 10) break total query time
//! into the five phases of Algorithm 1: *Initialization*, *Enqueuing
//! frontiers*, *Identifying Central Nodes*, *Expansion* and *Top-down
//! processing*. Every engine fills one of these profiles per search.

use serde::{Deserialize, Serialize};
use std::ops::AddAssign;
use std::time::Duration;

/// Wall-clock time per algorithm phase. Level-loop phases accumulate
/// across all BFS levels.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseProfile {
    /// Setting up `M`, `FIdentifier`, `CIdentifier` and the sources.
    pub init: Duration,
    /// Scanning `FIdentifier` into the joint frontier queue, per level.
    pub enqueue: Duration,
    /// Scanning frontiers for complete `M` rows, per level.
    pub identify: Duration,
    /// The expansion procedure (Alg. 2), per level.
    pub expansion: Duration,
    /// Extraction + level-cover pruning + ranking (Alg. 3).
    pub top_down: Duration,
}

impl PhaseProfile {
    /// Total across all phases.
    pub fn total(&self) -> Duration {
        self.init + self.enqueue + self.identify + self.expansion + self.top_down
    }

    /// The phase names in paper order, paired with their durations.
    pub fn phases(&self) -> [(&'static str, Duration); 5] {
        [
            ("Initialization", self.init),
            ("Enqueuing frontiers", self.enqueue),
            ("Identifying Central Nodes", self.identify),
            ("Expansion", self.expansion),
            ("Top-down processing", self.top_down),
        ]
    }
}

impl AddAssign for PhaseProfile {
    fn add_assign(&mut self, rhs: Self) {
        self.init += rhs.init;
        self.enqueue += rhs.enqueue;
        self.identify += rhs.identify;
        self.expansion += rhs.expansion;
        self.top_down += rhs.top_down;
    }
}

/// Averages a collection of profiles (the harness averages 50 queries per
/// datapoint, as the paper does).
pub fn mean_profile(profiles: &[PhaseProfile]) -> PhaseProfile {
    if profiles.is_empty() {
        return PhaseProfile::default();
    }
    let mut sum = PhaseProfile::default();
    for p in profiles {
        sum += *p;
    }
    let n = profiles.len() as u32;
    PhaseProfile {
        init: sum.init / n,
        enqueue: sum.enqueue / n,
        identify: sum.identify / n,
        expansion: sum.expansion / n,
        top_down: sum.top_down / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(ms: u64) -> PhaseProfile {
        PhaseProfile {
            init: Duration::from_millis(ms),
            enqueue: Duration::from_millis(ms),
            identify: Duration::from_millis(ms),
            expansion: Duration::from_millis(ms),
            top_down: Duration::from_millis(ms),
        }
    }

    #[test]
    fn total_sums_all_phases() {
        assert_eq!(p(2).total(), Duration::from_millis(10));
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = p(1);
        a += p(2);
        assert_eq!(a.total(), Duration::from_millis(15));
    }

    #[test]
    fn mean_is_elementwise() {
        let m = mean_profile(&[p(2), p(4)]);
        assert_eq!(m.init, Duration::from_millis(3));
        assert_eq!(m.total(), Duration::from_millis(15));
        assert_eq!(mean_profile(&[]), PhaseProfile::default());
    }

    #[test]
    fn phase_names_are_stable() {
        let names: Vec<_> = p(1).phases().iter().map(|(n, _)| *n).collect();
        assert_eq!(names[0], "Initialization");
        assert_eq!(names[4], "Top-down processing");
    }
}
