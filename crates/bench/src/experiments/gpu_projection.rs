//! Appendix experiment: hardware projection of the measured work profile.
//!
//! The GPU-Par engine here reproduces the paper's kernel *structure* but
//! not its silicon. This harness closes that gap analytically: it counts
//! the exact bytes the bottom-up stage moves (adjacency entries, matrix
//! reads/writes, frontier flags — level-synchronous BFS is
//! bandwidth-bound) and projects phase times onto the paper's two memory
//! systems (480 GB/s GDDR5X vs ~56 GB/s DDR4, both quoted in Sec. VI,
//! *Platform*). The projected GPU:CPU ratio is the hardware share of the
//! paper's speedups; the algorithmic share (vs BANKS-II, vs CPU-Par-d) is
//! measured directly by Exp-1.

use crate::{queries_per_point, PreparedDataset};
use central::costmodel::{count_work, HardwareModel, WorkMeasure};
use datagen::synthetic::SyntheticConfig;
use datagen::QueryWorkload;
use eval::runner::ExperimentSink;
use eval::Table;
use serde_json::json;
use textindex::ParsedQuery;

/// Run the projection on the smaller dataset.
pub fn run() -> serde_json::Value {
    println!("== Appendix: hardware projection of the bottom-up work profile ==");
    let ds = PreparedDataset::prepare(&SyntheticConfig::wiki2017_sim());
    let params = ds.params();
    let nq = queries_per_point();
    let mut workload = QueryWorkload::new(6000);
    let queries: Vec<ParsedQuery> =
        workload.batch(6, nq).iter().map(|r| ParsedQuery::parse(&ds.index, r)).collect();
    println!("dataset {}, {} six-keyword queries", ds.name, queries.len());

    let gpu = HardwareModel::paper_gpu();
    let cpu = HardwareModel::paper_cpu();
    let mut table = Table::new(vec![
        "query",
        "levels",
        "adj scans",
        "matrix ops",
        "GPU proj (ms)",
        "CPU proj (ms)",
        "ratio",
    ]);
    let mut total = WorkMeasure::default();
    let mut points = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        let work = count_work(&ds.graph, q, &params);
        let g_ms = gpu.project_ms(&work, q.num_keywords());
        let c_ms = cpu.project_ms(&work, q.num_keywords());
        table.row(vec![
            format!("q{i}"),
            work.levels.to_string(),
            work.adjacency_scans.to_string(),
            (work.matrix_reads + work.matrix_writes).to_string(),
            format!("{g_ms:.3}"),
            format!("{c_ms:.3}"),
            format!("{:.1}x", c_ms / g_ms.max(1e-9)),
        ]);
        points.push(json!({
            "levels": work.levels,
            "adjacency_scans": work.adjacency_scans,
            "matrix_reads": work.matrix_reads,
            "matrix_writes": work.matrix_writes,
            "gpu_ms": g_ms,
            "cpu_ms": c_ms,
        }));
        total.levels += work.levels;
        total.frontier_entries += work.frontier_entries;
        total.flag_scans += work.flag_scans;
        total.work_items += work.work_items;
        total.adjacency_scans += work.adjacency_scans;
        total.matrix_reads += work.matrix_reads;
        total.matrix_writes += work.matrix_writes;
    }
    table.print();
    let g_ms = gpu.project_ms(&total, 6);
    let c_ms = cpu.project_ms(&total, 6);
    println!(
        "\nworkload total: GPU-projected {g_ms:.2} ms vs CPU-projected {c_ms:.2} ms \
         ({:.1}x from bandwidth alone).\n\
         The paper's GPU:CPU-Par gap on the bandwidth-bound phases (enqueue,\n\
         identify, expansion) is of this order; its 2-3 orders of magnitude vs\n\
         BANKS-II is algorithmic and measured directly in Exp-1.\n",
        c_ms / g_ms.max(1e-9)
    );
    let record = json!({
        "experiment": "gpu_projection",
        "gpu_model": { "bandwidth_gbps": gpu.bandwidth_gbps, "efficiency": gpu.efficiency },
        "cpu_model": { "bandwidth_gbps": cpu.bandwidth_gbps, "efficiency": cpu.efficiency },
        "points": points,
        "total_gpu_ms": g_ms,
        "total_cpu_ms": c_ms,
    });
    if let Ok(path) = ExperimentSink::new().write("gpu_projection", &record) {
        println!("json: {}", path.display());
    }
    record
}
