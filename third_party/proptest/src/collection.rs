//! Collection strategies (`proptest::collection::vec`).

use crate::{Strategy, TestRng};
use std::ops::{Range, RangeInclusive};

/// Length specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max_exclusive: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max_exclusive: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { min: *r.start(), max_exclusive: *r.end() + 1 }
    }
}

/// Strategy producing `Vec`s of `element` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.range_usize(self.size.min, self.size.max_exclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_ranged_sizes() {
        let mut rng = TestRng::from_name("vec");
        for _ in 0..100 {
            assert_eq!(vec(0usize..5, 7).generate(&mut rng).len(), 7);
            let v = vec(0usize..5, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn nested_vecs() {
        let mut rng = TestRng::from_name("nested");
        let strat = vec(vec(0usize..3, 1..3), 2..5);
        let v = strat.generate(&mut rng);
        assert!(v.iter().all(|inner| (1..3).contains(&inner.len())));
    }
}
