//! Exp-1 (Figs. 6–7): per-phase running time vs `Knum` on both datasets,
//! for GPU-Par (structural), CPU-Par and CPU-Par-d, plus BANKS-II total
//! time. The paper averages 50 queries per datapoint; we default to
//! `WIKISEARCH_QUERIES` (10) on laptop hardware.

use crate::experiments::{engine_lineup, mean_profile_over};
use crate::{banks_budget, default_threads, queries_per_point, PreparedDataset};
use banks::{BanksII, BanksParams};
use datagen::QueryWorkload;
use eval::runner::{ms, ExperimentSink};
use eval::Table;
use serde_json::json;
use textindex::ParsedQuery;

/// The `Knum` sweep of Figs. 6–7.
pub const KNUMS: [usize; 5] = [2, 4, 6, 8, 10];

/// Run Exp-1 on both datasets.
pub fn run() -> serde_json::Value {
    let threads = default_threads();
    let nq = queries_per_point();
    println!("== Exp-1 (Figs. 6–7): vary Knum | {nq} queries/point, {threads} threads ==");
    let mut records = Vec::new();
    for ds in PreparedDataset::both() {
        records.push(run_dataset(&ds, threads, nq));
    }
    let record = json!({ "experiment": "exp1_vary_knum", "datasets": records });
    if let Ok(path) = ExperimentSink::new().write("exp1_vary_knum", &record) {
        println!("json: {}", path.display());
    }
    record
}

fn run_dataset(ds: &PreparedDataset, threads: usize, nq: usize) -> serde_json::Value {
    println!(
        "\n-- dataset {} ({} nodes / {} edges) --",
        ds.name,
        ds.graph.num_nodes(),
        ds.graph.num_directed_edges()
    );
    let params = ds.params();
    let engines = engine_lineup(threads);
    let banks = BanksII::new();
    let banks_params = BanksParams::default().with_node_budget(banks_budget());

    let mut per_knum = Vec::new();
    for knum in KNUMS {
        let mut workload = QueryWorkload::new(1000 + knum as u64);
        let raw = workload.batch(knum, nq);
        let queries: Vec<ParsedQuery> =
            raw.iter().map(|r| ParsedQuery::parse(&ds.index, r)).collect();

        let mut table = Table::new(vec![
            "engine",
            "init",
            "enqueue",
            "identify",
            "expansion",
            "top-down",
            "total(ms)",
        ]);
        let mut engines_json = Vec::new();
        for e in &engines {
            let p = mean_profile_over(e.as_ref(), &ds.graph, &queries, &params);
            table.row(vec![
                e.name().to_string(),
                ms(p.init),
                ms(p.enqueue),
                ms(p.identify),
                ms(p.expansion),
                ms(p.top_down),
                ms(p.total()),
            ]);
            engines_json.push(json!({
                "engine": e.name(),
                "init_ms": p.init.as_secs_f64() * 1e3,
                "enqueue_ms": p.enqueue.as_secs_f64() * 1e3,
                "identify_ms": p.identify.as_secs_f64() * 1e3,
                "expansion_ms": p.expansion.as_secs_f64() * 1e3,
                "top_down_ms": p.top_down.as_secs_f64() * 1e3,
                "total_ms": p.total().as_secs_f64() * 1e3,
            }));
        }
        // BANKS-II: total time only (as in the paper's last panel). The
        // paper caps BANKS at 500 s wall-clock; we cap queue pops, and
        // flag how often the cap truncated the search — a capped time is
        // a lower bound, not a win.
        let mut banks_total = std::time::Duration::ZERO;
        let mut banks_pops = 0usize;
        let mut banks_truncated = 0usize;
        for q in &queries {
            let out = banks.search(&ds.graph, q, &banks_params);
            banks_total += out.elapsed;
            banks_pops += out.pops;
            banks_truncated += out.budget_exhausted as usize;
        }
        let banks_mean = banks_total / nq as u32;
        let banks_cell = if banks_truncated > 0 {
            format!("{}*", ms(banks_mean))
        } else {
            ms(banks_mean)
        };
        table.row(vec![
            "BANKS-II".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            banks_cell,
        ]);
        println!("Knum = {knum}");
        table.print();
        if banks_truncated > 0 {
            println!(
                "  (* BANKS-II hit its pop budget on {banks_truncated}/{nq} queries — its true time is higher)"
            );
        }
        engines_json.push(json!({
            "engine": "BANKS-II",
            "total_ms": banks_mean.as_secs_f64() * 1e3,
            "mean_pops": banks_pops / nq,
            "budget_truncated": banks_truncated,
        }));
        per_knum.push(json!({ "knum": knum, "engines": engines_json }));
    }
    json!({
        "dataset": ds.name,
        "nodes": ds.graph.num_nodes(),
        "edges": ds.graph.num_directed_edges(),
        "queries_per_point": nq,
        "threads": threads,
        "points": per_knum,
    })
}
