//! Regenerates the paper's Fig. 8 row 1 (Exp-2).
fn main() {
    wikisearch_bench::experiments::exp2_topk::run();
}
