//! The workspace's central correctness property: all four engines —
//! sequential, lock-free coarse-grained (CPU-Par), lock-free fine-grained
//! (GPU-Par structure) and lock-based dynamic (CPU-Par-d) — return
//! identical answers on arbitrary graphs and queries.
//!
//! This is the test form of the paper's Theorems V.2 (lock-free writes are
//! benign), V.3 (bottom-up solves top-(k,d)) and V.4 (extraction from `M`
//! recovers exactly the hitting paths that CPU-Par-d records during
//! search).

use central::engine::{DynParEngine, GpuStyleEngine, KeywordSearchEngine, ParCpuEngine, SeqEngine};
use central::{SearchParams, SearchSession, SessionPool};
use kgraph::{GraphBuilder, KnowledgeGraph};
use proptest::prelude::*;
use textindex::{InvertedIndex, ParsedQuery};

/// Small word pool; several words per node text creates overlapping
/// keyword groups and co-occurrence nodes.
const WORDS: &[&str] = &["alpha", "beta", "gamma", "delta", "omega", "sigma", "kappa", "lambda"];

#[derive(Debug, Clone)]
struct Case {
    nodes: usize,
    texts: Vec<Vec<usize>>,     // word indices per node
    edges: Vec<(usize, usize)>, // node index pairs
    activation: Vec<u8>,        // explicit per-node activation
    query: Vec<usize>,          // word indices
    top_k: usize,
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (2usize..28).prop_flat_map(|nodes| {
        let texts =
            proptest::collection::vec(proptest::collection::vec(0usize..WORDS.len(), 1..3), nodes);
        let edges = proptest::collection::vec((0usize..nodes, 0usize..nodes), 1..60);
        let activation = proptest::collection::vec(0u8..5, nodes);
        let query = proptest::collection::vec(0usize..WORDS.len(), 2..4);
        let top_k = 1usize..8;
        (texts, edges, activation, query, top_k).prop_map(
            move |(texts, edges, activation, query, top_k)| Case {
                nodes,
                texts,
                edges,
                activation,
                query,
                top_k,
            },
        )
    })
}

fn build_graph(case: &Case) -> KnowledgeGraph {
    let mut b = GraphBuilder::new();
    for (i, words) in case.texts.iter().enumerate() {
        let text: Vec<&str> = words.iter().map(|&w| WORDS[w]).collect();
        b.add_node(&format!("n{i}"), &text.join(" "));
    }
    for (idx, &(s, d)) in case.edges.iter().enumerate() {
        if s != d {
            let s = b.node(&format!("n{s}")).unwrap();
            let d = b.node(&format!("n{d}")).unwrap();
            b.add_edge(s, d, if idx % 3 == 0 { "p" } else { "q" });
        }
    }
    let _ = case.nodes;
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn all_engines_agree(case in case_strategy()) {
        let graph = build_graph(&case);
        let idx = InvertedIndex::build(&graph);
        let raw: Vec<&str> = case.query.iter().map(|&w| WORDS[w]).collect();
        let query = ParsedQuery::parse(&idx, &raw.join(" "));
        let params = SearchParams {
            top_k: case.top_k,
            max_level: 12,
            ..SearchParams::default()
        }
        .with_explicit_activation(case.activation.clone());

        let engines: Vec<Box<dyn KeywordSearchEngine>> = vec![
            Box::new(SeqEngine::new()),
            Box::new(ParCpuEngine::new(3)),
            Box::new(GpuStyleEngine::new(3)),
            Box::new(DynParEngine::new(3)),
        ];
        let reference = engines[0].search(&graph, &query, &params);
        // Every answer satisfies the model invariants.
        for a in &reference.answers {
            prop_assert!(a.check_invariants().is_ok(), "{:?}", a.check_invariants());
        }
        for engine in &engines[1..] {
            let out = engine.search(&graph, &query, &params);
            prop_assert_eq!(
                out.answers.len(),
                reference.answers.len(),
                "answer count differs for {}",
                engine.name()
            );
            for (a, b) in out.answers.iter().zip(&reference.answers) {
                prop_assert_eq!(a.central, b.central, "central differs for {}", engine.name());
                prop_assert_eq!(a.depth, b.depth, "depth differs for {}", engine.name());
                prop_assert_eq!(&a.nodes, &b.nodes, "nodes differ for {}", engine.name());
                prop_assert_eq!(&a.edges, &b.edges, "edges differ for {}", engine.name());
                prop_assert_eq!(
                    &a.keyword_edges,
                    &b.keyword_edges,
                    "per-keyword hitting paths differ for {}",
                    engine.name()
                );
                prop_assert!((a.score - b.score).abs() < 1e-9, "score differs for {}", engine.name());
            }
        }
    }

    /// The session property: running a stream of (at least three)
    /// consecutive *distinct* queries through one reused [`SearchSession`]
    /// must be bit-identical — answers, scores, statistics, and the
    /// per-level trace — to running each query through a fresh session,
    /// for all four engines. A stale-epoch leak (a cell from query `i`
    /// read as current by query `i+1`) would surface here as a diverging
    /// hitting level, candidate cohort, or answer set.
    #[test]
    fn session_reuse_is_bit_identical_to_fresh(case in case_strategy()) {
        let graph = build_graph(&case);
        let idx = InvertedIndex::build(&graph);
        // Three consecutive distinct queries derived from the base query
        // by rotating the word pool, so keyword sets differ per query.
        let queries: Vec<ParsedQuery> = (0..3)
            .map(|k| {
                let raw: Vec<&str> = case
                    .query
                    .iter()
                    .map(|&w| WORDS[(w + k) % WORDS.len()])
                    .collect();
                ParsedQuery::parse(&idx, &raw.join(" "))
            })
            .collect();
        let params = SearchParams {
            top_k: case.top_k,
            max_level: 12,
            ..SearchParams::default()
        }
        .with_explicit_activation(case.activation.clone());

        let engines: Vec<Box<dyn KeywordSearchEngine>> = vec![
            Box::new(SeqEngine::new()),
            Box::new(ParCpuEngine::new(3)),
            Box::new(GpuStyleEngine::new(3)),
            Box::new(DynParEngine::new(3)),
        ];
        for engine in &engines {
            let mut session = SearchSession::new();
            for (qi, query) in queries.iter().enumerate() {
                let fresh = engine.search(&graph, query, &params);
                let warm = engine.search_session(&mut session, &graph, query, &params);
                prop_assert_eq!(
                    warm.answers.len(),
                    fresh.answers.len(),
                    "answer count: query {} via {}",
                    qi,
                    engine.name()
                );
                for (a, b) in warm.answers.iter().zip(&fresh.answers) {
                    prop_assert_eq!(a.central, b.central, "central: query {} via {}", qi, engine.name());
                    prop_assert_eq!(a.depth, b.depth, "depth: query {} via {}", qi, engine.name());
                    prop_assert_eq!(&a.nodes, &b.nodes, "nodes: query {} via {}", qi, engine.name());
                    prop_assert_eq!(&a.edges, &b.edges, "edges: query {} via {}", qi, engine.name());
                    prop_assert_eq!(
                        &a.keyword_edges,
                        &b.keyword_edges,
                        "keyword paths: query {} via {}",
                        qi,
                        engine.name()
                    );
                    prop_assert_eq!(
                        a.score.to_bits(),
                        b.score.to_bits(),
                        "score bits: query {} via {}",
                        qi,
                        engine.name()
                    );
                }
                prop_assert_eq!(
                    warm.stats.central_candidates,
                    fresh.stats.central_candidates,
                    "cohort: query {} via {}",
                    qi,
                    engine.name()
                );
                prop_assert_eq!(
                    warm.stats.last_level,
                    fresh.stats.last_level,
                    "last level: query {} via {}",
                    qi,
                    engine.name()
                );
                prop_assert_eq!(
                    warm.stats.peak_frontier,
                    fresh.stats.peak_frontier,
                    "peak frontier: query {} via {}",
                    qi,
                    engine.name()
                );
                prop_assert_eq!(
                    &warm.stats.trace,
                    &fresh.stats.trace,
                    "level trace: query {} via {}",
                    qi,
                    engine.name()
                );
            }
            // Queries that match no keyword short-circuit before touching
            // the session, so only non-empty parses count as runs.
            let expected_runs = queries.iter().filter(|q| q.num_keywords() > 0).count() as u64;
            prop_assert_eq!(session.queries_run(), expected_runs);
        }
    }

    /// The pool form of the session property: queries alternating across
    /// two *live* pool guards (the shape of two concurrent server
    /// workers) must stay bit-identical to fresh-session searches, for
    /// all four engines, and the pool must account every query. Guards
    /// hold distinct sessions, so interleaving them cannot leak state
    /// between in-flight queries.
    #[test]
    fn pooled_sessions_are_bit_identical_to_fresh(case in case_strategy()) {
        let graph = build_graph(&case);
        let idx = InvertedIndex::build(&graph);
        let queries: Vec<ParsedQuery> = (0..4)
            .map(|k| {
                let raw: Vec<&str> = case
                    .query
                    .iter()
                    .map(|&w| WORDS[(w + k) % WORDS.len()])
                    .collect();
                ParsedQuery::parse(&idx, &raw.join(" "))
            })
            .collect();
        let params = SearchParams {
            top_k: case.top_k,
            max_level: 12,
            ..SearchParams::default()
        }
        .with_explicit_activation(case.activation.clone());

        let engines: Vec<Box<dyn KeywordSearchEngine>> = vec![
            Box::new(SeqEngine::new()),
            Box::new(ParCpuEngine::new(3)),
            Box::new(GpuStyleEngine::new(3)),
            Box::new(DynParEngine::new(3)),
        ];
        let pool = SessionPool::new();
        for engine in &engines {
            let mut left = pool.checkout();
            let mut right = pool.checkout();
            prop_assert_ne!(left.session_id(), right.session_id());
            for (qi, query) in queries.iter().enumerate() {
                let guard = if qi % 2 == 0 { &mut left } else { &mut right };
                let fresh = engine.search(&graph, query, &params);
                let warm = engine.search_session(guard, &graph, query, &params);
                prop_assert_eq!(
                    warm.answers.len(),
                    fresh.answers.len(),
                    "answer count: query {} via {}",
                    qi,
                    engine.name()
                );
                for (a, b) in warm.answers.iter().zip(&fresh.answers) {
                    prop_assert_eq!(a.central, b.central, "central: query {} via {}", qi, engine.name());
                    prop_assert_eq!(&a.nodes, &b.nodes, "nodes: query {} via {}", qi, engine.name());
                    prop_assert_eq!(&a.edges, &b.edges, "edges: query {} via {}", qi, engine.name());
                    prop_assert_eq!(
                        &a.keyword_edges,
                        &b.keyword_edges,
                        "keyword paths: query {} via {}",
                        qi,
                        engine.name()
                    );
                    prop_assert_eq!(
                        a.score.to_bits(),
                        b.score.to_bits(),
                        "score bits: query {} via {}",
                        qi,
                        engine.name()
                    );
                }
                prop_assert_eq!(
                    warm.stats.central_candidates,
                    fresh.stats.central_candidates,
                    "cohort: query {} via {}",
                    qi,
                    engine.name()
                );
                prop_assert_eq!(&warm.stats.trace, &fresh.stats.trace,
                    "level trace: query {} via {}", qi, engine.name());
            }
        }
        // Both sessions return to the freelist; the pool saw every
        // non-empty query and never grew past the two live guards.
        prop_assert_eq!(pool.sessions_created(), 2);
        prop_assert_eq!(pool.idle_sessions(), 2);
        prop_assert_eq!(pool.in_flight(), 0);
        let expected_runs = queries.iter().filter(|q| q.num_keywords() > 0).count() as u64
            * engines.len() as u64;
        prop_assert_eq!(pool.queries_run(), expected_runs);
    }

    #[test]
    fn parallel_engines_are_deterministic_across_runs(case in case_strategy()) {
        let graph = build_graph(&case);
        let idx = InvertedIndex::build(&graph);
        let raw: Vec<&str> = case.query.iter().map(|&w| WORDS[w]).collect();
        let query = ParsedQuery::parse(&idx, &raw.join(" "));
        let params = SearchParams {
            top_k: case.top_k,
            max_level: 12,
            ..SearchParams::default()
        }
        .with_explicit_activation(case.activation.clone());
        let engine = ParCpuEngine::new(4);
        let a = engine.search(&graph, &query, &params);
        let b = engine.search(&graph, &query, &params);
        prop_assert_eq!(a.answers.len(), b.answers.len());
        for (x, y) in a.answers.iter().zip(&b.answers) {
            prop_assert_eq!(x.central, y.central);
            prop_assert_eq!(&x.nodes, &y.nodes);
            prop_assert_eq!(&x.edges, &y.edges);
        }
    }
}
