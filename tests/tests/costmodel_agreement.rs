//! The instrumented work counter (`central::costmodel`) replays the
//! bottom-up search with its own loop; it must stay in lockstep with the
//! real engines on arbitrary graphs — same central-node count, and work
//! tallies consistent with the graph's size.

use central::costmodel::count_work;
use central::engine::{KeywordSearchEngine, SeqEngine};
use central::SearchParams;
use kgraph::GraphBuilder;
use proptest::prelude::*;
use textindex::{InvertedIndex, ParsedQuery};

const WORDS: &[&str] = &["red", "green", "blue", "cyan", "plum"];

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn counter_matches_engine_candidates(
        texts in proptest::collection::vec(
            proptest::collection::vec(0usize..WORDS.len(), 1..3), 2..20),
        edges in proptest::collection::vec((0usize..20, 0usize..20), 1..40),
        activation in proptest::collection::vec(0u8..4, 20),
        qwords in proptest::collection::vec(0usize..WORDS.len(), 2..4),
        top_k in 1usize..6,
    ) {
        let n = texts.len();
        let mut b = GraphBuilder::new();
        for (i, ws) in texts.iter().enumerate() {
            let t: Vec<&str> = ws.iter().map(|&w| WORDS[w]).collect();
            b.add_node(&format!("n{i}"), &t.join(" "));
        }
        for &(s, d) in &edges {
            let (s, d) = (s % n, d % n);
            if s != d {
                let s = b.node(&format!("n{s}")).unwrap();
                let d = b.node(&format!("n{d}")).unwrap();
                b.add_edge(s, d, "e");
            }
        }
        let g = b.build();
        let idx = InvertedIndex::build(&g);
        let raw: Vec<&str> = qwords.iter().map(|&w| WORDS[w]).collect();
        let query = ParsedQuery::parse(&idx, &raw.join(" "));
        let params = SearchParams {
            top_k,
            max_level: 10,
            ..SearchParams::default()
        }
        .with_explicit_activation(activation[..n].to_vec());

        let work = count_work(&g, &query, &params);
        let out = SeqEngine::new().search(&g, &query, &params);
        prop_assert_eq!(work.central_nodes as usize, out.stats.central_candidates);
        // Tallies are bounded by graph size × levels.
        let max_scans = (g.num_adjacency_entries() as u64)
            * (work.levels.max(1) as u64)
            * query.num_keywords().max(1) as u64;
        prop_assert!(work.adjacency_scans <= max_scans);
        prop_assert!(work.matrix_writes as usize <= g.num_nodes() * query.num_keywords());
    }
}
