//! Structured failures of a budgeted search.
//!
//! A search that exceeds its [`crate::budget::QueryBudget`] does not hang
//! and does not return a silently truncated answer — it stops
//! cooperatively at the next budget checkpoint and surfaces one of these
//! errors. The serving layer maps [`SearchError::kind`] onto its one-line
//! JSON error protocol, so clients can distinguish "the query was too
//! expensive" from "the request was malformed".

use std::fmt;
use std::time::Duration;

/// Why a budgeted search was cut short.
///
/// Carried by `Err` results of the `try_*` search entry points
/// ([`crate::engine::KeywordSearchEngine::try_search_session`] and the
/// engine facade built on it). A failed search never produces partial
/// answers: callers get the error *instead of* an answer set, and the
/// result cache is never populated from one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SearchError {
    /// The wall-clock deadline passed before the search completed.
    DeadlineExceeded {
        /// The wall-clock allowance the query started with.
        limit: Duration,
    },
    /// The expansion cap was spent before the search completed.
    BudgetExhausted {
        /// The expansion-unit allowance the query started with.
        limit: u64,
    },
    /// A remote shard worker was unreachable past its retry budget and
    /// the query was not allowed to degrade (see
    /// [`crate::remote::RemoteOptions::degraded_answers`]).
    ShardUnavailable {
        /// The shard whose worker could not be reached.
        shard: usize,
    },
}

impl SearchError {
    /// Stable machine-readable code, used verbatim as the serving layer's
    /// JSON `"error"` field.
    pub fn kind(&self) -> &'static str {
        match self {
            SearchError::DeadlineExceeded { .. } => "deadline_exceeded",
            SearchError::BudgetExhausted { .. } => "budget_exhausted",
            SearchError::ShardUnavailable { .. } => "shard_unavailable",
        }
    }
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchError::DeadlineExceeded { limit } => {
                write!(f, "search exceeded its {:.0} ms deadline", limit.as_secs_f64() * 1e3)
            }
            SearchError::BudgetExhausted { limit } => {
                write!(f, "search exhausted its budget of {limit} expansion units")
            }
            SearchError::ShardUnavailable { shard } => {
                write!(f, "shard {shard} worker unavailable past its retry budget")
            }
        }
    }
}

impl std::error::Error for SearchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable_protocol_codes() {
        let d = SearchError::DeadlineExceeded { limit: Duration::from_millis(250) };
        let b = SearchError::BudgetExhausted { limit: 1000 };
        let s = SearchError::ShardUnavailable { shard: 3 };
        assert_eq!(d.kind(), "deadline_exceeded");
        assert_eq!(b.kind(), "budget_exhausted");
        assert_eq!(s.kind(), "shard_unavailable");
        assert!(d.to_string().contains("250 ms"));
        assert!(b.to_string().contains("1000 expansion units"));
        assert!(s.to_string().contains("shard 3"));
    }
}
