//! The remote-invariance property: answering through the fault-tolerant
//! multi-process coordinator (`central::remote`) — every shard behind a
//! real TCP connection to a worker speaking the length-prefixed frame
//! protocol — is *byte-identical* to the monolithic engine: answers,
//! score bits, statistics, and the per-level trace, for every backend
//! and for fleet sizes {1, 2, 4}.
//!
//! This is the remote form of `shard_equivalence`: serialization, the
//! per-round frontier exchange over the wire, and the retry/supervision
//! machinery must all be invisible in the answer bytes. Error semantics
//! travel too — a budget that trips remotely must surface the same
//! structured error class the monolithic engine raises.

use central::engine::{DynParEngine, GpuStyleEngine, KeywordSearchEngine, ParCpuEngine, SeqEngine};
use central::shard::DEFAULT_PARTITION_SEED;
use central::{
    QueryBudget, RemoteOptions, RemoteShardedSearch, SearchError, SearchParams, ShardBackend,
    ShardWorker, StaticAddrs,
};
use kgraph::{GraphBuilder, KnowledgeGraph};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;
use textindex::{InvertedIndex, ParsedQuery};

/// Small word pool; several words per node text creates overlapping
/// keyword groups and co-occurrence nodes.
const WORDS: &[&str] = &["alpha", "beta", "gamma", "delta", "omega", "sigma", "kappa", "lambda"];

/// The fleet sizes every property runs under; 1 pins the degenerate
/// single-worker fleet, 4 usually exceeds the per-shard node count.
const FLEET_SIZES: &[usize] = &[1, 2, 4];

/// Deterministic supervision knobs for in-process fleets: no background
/// heartbeat thread (probes would race the assertions) and a minimal
/// retry budget — a healthy loopback fleet never needs retries anyway.
fn test_opts() -> RemoteOptions {
    RemoteOptions {
        attempts: 1,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(2),
        connect_timeout: Duration::from_millis(500),
        heartbeat: None,
        ..RemoteOptions::default()
    }
}

/// Spawn an in-process worker fleet over `graph` and return a
/// coordinator attached to it.
fn remote_fleet(
    graph: &KnowledgeGraph,
    backend: ShardBackend,
    shards: usize,
) -> RemoteShardedSearch {
    let addrs: Vec<std::net::SocketAddr> = (0..shards)
        .map(|i| ShardWorker::spawn_local(graph, shards, i, DEFAULT_PARTITION_SEED))
        .collect();
    RemoteShardedSearch::new(graph, backend, shards, Arc::new(StaticAddrs(addrs)), test_opts())
}

#[derive(Debug, Clone)]
struct Case {
    nodes: usize,
    texts: Vec<Vec<usize>>,     // word indices per node
    edges: Vec<(usize, usize)>, // node index pairs
    activation: Vec<u8>,        // explicit per-node activation
    query: Vec<usize>,          // word indices
    top_k: usize,
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (2usize..20).prop_flat_map(|nodes| {
        let texts =
            proptest::collection::vec(proptest::collection::vec(0usize..WORDS.len(), 1..3), nodes);
        let edges = proptest::collection::vec((0usize..nodes, 0usize..nodes), 1..40);
        let activation = proptest::collection::vec(0u8..5, nodes);
        let query = proptest::collection::vec(0usize..WORDS.len(), 2..4);
        let top_k = 1usize..8;
        (texts, edges, activation, query, top_k).prop_map(
            move |(texts, edges, activation, query, top_k)| Case {
                nodes,
                texts,
                edges,
                activation,
                query,
                top_k,
            },
        )
    })
}

fn build_graph(case: &Case) -> KnowledgeGraph {
    let mut b = GraphBuilder::new();
    for (i, words) in case.texts.iter().enumerate() {
        let text: Vec<&str> = words.iter().map(|&w| WORDS[w]).collect();
        b.add_node(&format!("n{i}"), &text.join(" "));
    }
    for (idx, &(s, d)) in case.edges.iter().enumerate() {
        if s != d {
            let s = b.node(&format!("n{s}")).unwrap();
            let d = b.node(&format!("n{d}")).unwrap();
            b.add_edge(s, d, if idx % 3 == 0 { "p" } else { "q" });
        }
    }
    let _ = case.nodes;
    b.build()
}

/// The four remote backends paired with their monolithic references.
/// Thread counts are modest: every proptest case spawns fresh fleets.
fn backends() -> Vec<(ShardBackend, Box<dyn KeywordSearchEngine>)> {
    vec![
        (ShardBackend::Seq, Box::new(SeqEngine::new())),
        (ShardBackend::ParCpu(2), Box::new(ParCpuEngine::new(2))),
        (ShardBackend::GpuStyle(2), Box::new(GpuStyleEngine::new(2))),
        (ShardBackend::DynPar(2), Box::new(DynParEngine::new(2))),
    ]
}

/// Byte-level comparison of a remote outcome against its monolithic
/// reference: answers (ids, paths, score *bits*) and the search
/// statistics including the per-level trace.
fn assert_identical(
    remote: &central::SearchOutcome,
    reference: &central::SearchOutcome,
    label: &str,
) {
    assert_eq!(remote.answers.len(), reference.answers.len(), "answer count: {label}");
    for (a, b) in remote.answers.iter().zip(&reference.answers) {
        assert_eq!(a.central, b.central, "central: {label}");
        assert_eq!(a.depth, b.depth, "depth: {label}");
        assert_eq!(a.nodes, b.nodes, "nodes: {label}");
        assert_eq!(a.edges, b.edges, "edges: {label}");
        assert_eq!(a.keyword_nodes, b.keyword_nodes, "keyword nodes: {label}");
        assert_eq!(a.keyword_edges, b.keyword_edges, "keyword paths: {label}");
        assert_eq!(a.score.to_bits(), b.score.to_bits(), "score bits: {label}");
    }
    assert_eq!(remote.stats.last_level, reference.stats.last_level, "last level: {label}");
    assert_eq!(
        remote.stats.central_candidates, reference.stats.central_candidates,
        "cohort: {label}"
    );
    assert_eq!(
        remote.stats.peak_frontier, reference.stats.peak_frontier,
        "peak frontier: {label}"
    );
    assert_eq!(remote.stats.trace, reference.stats.trace, "level trace: {label}");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// The tentpole property: for arbitrary graphs, queries, explicit
    /// activation maps and top-k, every backend at every fleet size
    /// answers over real worker processes¹ exactly what its monolithic
    /// counterpart answers — and never degrades on a healthy fleet.
    ///
    /// ¹ in-process worker threads on real TCP sockets: the full frame
    ///   protocol without the process-spawn latency.
    #[test]
    fn remote_search_is_byte_identical_to_unsharded(case in case_strategy()) {
        let graph = build_graph(&case);
        let idx = InvertedIndex::build(&graph);
        let raw: Vec<&str> = case.query.iter().map(|&w| WORDS[w]).collect();
        let query = ParsedQuery::parse(&idx, &raw.join(" "));
        let params = SearchParams {
            top_k: case.top_k,
            max_level: 12,
            ..SearchParams::default()
        }
        .with_explicit_activation(case.activation.clone());
        let budget = QueryBudget::unlimited();

        for (backend, reference_engine) in backends() {
            let reference = reference_engine.search(&graph, &query, &params);
            for &shards in FLEET_SIZES {
                let coordinator = remote_fleet(&graph, backend, shards);
                let out = coordinator
                    .try_search(&graph, &query, &params, &budget)
                    .expect("healthy fleet under an unlimited budget cannot fail");
                prop_assert!(!out.degraded, "healthy fleet degraded: {}", coordinator.name());
                let label = format!("{} x {shards} remote shards", reference_engine.name());
                assert_identical(&out.outcome, &reference, &label);
            }
        }
    }
}

/// Monolithic reference digests compared against every backend × fleet
/// size for one fixed graph and query set (cheap deterministic edge
/// cases that a shrunken proptest case may never reach).
fn assert_all_fleets_match(graph: &KnowledgeGraph, queries: &[&str]) {
    let idx = InvertedIndex::build(graph);
    let params = SearchParams { max_level: 12, ..SearchParams::default() };
    let budget = QueryBudget::unlimited();
    for (backend, reference_engine) in backends() {
        for q in queries {
            let query = ParsedQuery::parse(&idx, q);
            let reference = reference_engine.search(graph, &query, &params);
            for &shards in FLEET_SIZES {
                let coordinator = remote_fleet(graph, backend, shards);
                let out = coordinator
                    .try_search(graph, &query, &params, &budget)
                    .expect("healthy fleet under an unlimited budget cannot fail");
                assert!(!out.degraded, "healthy fleet degraded on {q:?}");
                let label =
                    format!("{} x {shards} remote shards on {q:?}", reference_engine.name());
                assert_identical(&out.outcome, &reference, &label);
            }
        }
    }
}

#[test]
fn single_node_graphs_survive_any_fleet_size() {
    let mut b = GraphBuilder::new();
    b.add_node("solo", "alpha beta");
    let graph = b.build();
    assert_all_fleets_match(&graph, &["alpha beta", "alpha", "gamma", ""]);
}

#[test]
fn disconnected_graphs_survive_any_fleet_size() {
    // Two components plus two isolated nodes: cross-component queries
    // must fail identically, intra-component ones must answer
    // identically, at every fleet size.
    let mut b = GraphBuilder::new();
    let a1 = b.add_node("a1", "alpha");
    let a2 = b.add_node("a2", "beta");
    let a3 = b.add_node("a3", "gamma hub");
    b.add_edge(a1, a3, "p");
    b.add_edge(a2, a3, "q");
    let b1 = b.add_node("b1", "delta");
    let b2 = b.add_node("b2", "omega");
    b.add_edge(b1, b2, "p");
    b.add_node("iso1", "sigma");
    b.add_node("iso2", "kappa");
    let graph = b.build();
    assert_all_fleets_match(
        &graph,
        &["alpha beta", "delta omega", "alpha delta", "sigma kappa", "sigma"],
    );
}

#[test]
fn more_workers_than_nodes_is_byte_identical() {
    // 3 nodes, a 4-worker fleet: most workers own nothing and must stay
    // inert without perturbing the merged answers.
    let mut b = GraphBuilder::new();
    let x = b.add_node("x", "alpha");
    let y = b.add_node("y", "beta bridge");
    let z = b.add_node("z", "gamma");
    b.add_edge(x, y, "p");
    b.add_edge(z, y, "q");
    let graph = b.build();
    assert_all_fleets_match(&graph, &["alpha gamma", "alpha beta gamma", "beta"]);
}

#[test]
fn budget_errors_surface_the_same_class_remotely() {
    // A chain long enough that a 1-expansion budget trips mid-search:
    // the remote coordinator must raise the same structured error class
    // the monolithic path raises — never a wire-level error, never a
    // silent partial answer.
    let mut b = GraphBuilder::new();
    let mut prev = b.add_node("n0", "alpha");
    for i in 1..12 {
        let next = b.add_node(&format!("n{i}"), if i == 11 { "omega" } else { "filler" });
        b.add_edge(prev, next, "p");
        prev = next;
    }
    let graph = b.build();
    let idx = InvertedIndex::build(&graph);
    let query = ParsedQuery::parse(&idx, "alpha omega");
    let params = SearchParams { max_level: 16, ..SearchParams::default() };
    let tight = QueryBudget::unlimited().with_max_expansions(1);

    let coordinator = remote_fleet(&graph, ShardBackend::Seq, 2);
    let remote_err = coordinator
        .try_search(&graph, &query, &params, &tight)
        .expect_err("a 1-expansion budget must trip on a 12-node chain");
    let local = central::ShardedSearch::new(&graph, ShardBackend::Seq, 2);
    let local_err = local
        .try_search(&graph, &query, &params, &tight)
        .expect_err("the in-process coordinator must trip identically");
    assert_eq!(remote_err.kind(), local_err.kind(), "error class diverged");
    assert!(
        matches!(remote_err, SearchError::BudgetExhausted { .. }),
        "expected budget_exhausted, got {remote_err:?}"
    );
}
