//! Minimal dependency-free argument parsing for the `wikisearch` CLI.
//!
//! The grammar is `wikisearch <command> [--flag value]...`; flags may
//! appear in any order, unknown flags are errors, and every command has a
//! usage string surfaced by `wikisearch help`.

use std::collections::HashMap;

/// A parsed command line: the command word plus its `--flag value` pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedArgs {
    /// The command word (`generate`, `search`, …).
    pub command: String,
    flags: HashMap<String, String>,
}

/// Parse `argv` (without the program name).
pub fn parse(argv: &[String]) -> Result<ParsedArgs, String> {
    let mut it = argv.iter();
    let command = it
        .next()
        .ok_or_else(|| "missing command; try `wikisearch help`".to_string())?
        .clone();
    let mut flags = HashMap::new();
    while let Some(arg) = it.next() {
        let Some(name) = arg.strip_prefix("--") else {
            return Err(format!("unexpected positional argument {arg:?}"));
        };
        let value = it.next().ok_or_else(|| format!("flag --{name} is missing its value"))?.clone();
        if flags.insert(name.to_string(), value).is_some() {
            return Err(format!("flag --{name} given twice"));
        }
    }
    Ok(ParsedArgs { command, flags })
}

impl ParsedArgs {
    /// Required string flag.
    pub fn required(&self, name: &str) -> Result<&str, String> {
        self.flags
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// Optional string flag.
    pub fn optional(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// Optional flag parsed to a type, with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v.parse::<T>().map_err(|_| format!("flag --{name}: cannot parse {v:?}")),
        }
    }

    /// Optional byte-size flag with a `k`/`m`/`g` suffix (powers of
    /// 1024, case-insensitive); a bare number is bytes. `0` is valid
    /// and conventionally means "disabled".
    pub fn get_bytes(&self, name: &str, default: usize) -> Result<usize, String> {
        let Some(raw) = self.flags.get(name) else {
            return Ok(default);
        };
        let bad = || format!("flag --{name}: cannot parse {raw:?} as a byte size (try 64m, 1g)");
        let (digits, shift) = match raw.trim().to_ascii_lowercase() {
            s if s.ends_with('k') => (s[..s.len() - 1].to_string(), 10),
            s if s.ends_with('m') => (s[..s.len() - 1].to_string(), 20),
            s if s.ends_with('g') => (s[..s.len() - 1].to_string(), 30),
            s => (s, 0),
        };
        let n: usize = digits.parse().map_err(|_| bad())?;
        n.checked_shl(shift).filter(|v| v >> shift == n).ok_or_else(bad)
    }

    /// Reject flags outside the allowed set (typo protection).
    pub fn allow_only(&self, allowed: &[&str]) -> Result<(), String> {
        for k in self.flags.keys() {
            if !allowed.contains(&k.as_str()) {
                return Err(format!(
                    "unknown flag --{k} for `{}` (allowed: {})",
                    self.command,
                    allowed.iter().map(|a| format!("--{a}")).collect::<Vec<_>>().join(", ")
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let a = parse(&argv("search --query xml --top-k 5")).unwrap();
        assert_eq!(a.command, "search");
        assert_eq!(a.required("query").unwrap(), "xml");
        assert_eq!(a.get_or::<usize>("top-k", 20).unwrap(), 5);
        assert_eq!(a.get_or::<usize>("absent", 20).unwrap(), 20);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse(&argv("")).is_err());
        assert!(parse(&argv("search query")).is_err(), "positional rejected");
        assert!(parse(&argv("search --query")).is_err(), "dangling flag");
        assert!(parse(&argv("search --q a --q b")).is_err(), "duplicate flag");
    }

    #[test]
    fn allow_only_catches_typos() {
        let a = parse(&argv("generate --dataste tiny")).unwrap();
        let err = a.allow_only(&["dataset", "out"]).unwrap_err();
        assert!(err.contains("--dataste"));
        assert!(err.contains("--dataset"));
    }

    #[test]
    fn byte_sizes_accept_suffixes() {
        let a = parse(&argv("serve --a 64m --b 2K --c 1g --d 4096 --e 0")).unwrap();
        assert_eq!(a.get_bytes("a", 0).unwrap(), 64 << 20);
        assert_eq!(a.get_bytes("b", 0).unwrap(), 2 << 10);
        assert_eq!(a.get_bytes("c", 0).unwrap(), 1 << 30);
        assert_eq!(a.get_bytes("d", 0).unwrap(), 4096);
        assert_eq!(a.get_bytes("e", 7).unwrap(), 0, "explicit 0 beats the default");
        assert_eq!(a.get_bytes("absent", 7).unwrap(), 7);
    }

    #[test]
    fn byte_sizes_reject_garbage() {
        let a = parse(&argv("serve --a 64q --b lots --c 99999999999999999999g")).unwrap();
        assert!(a.get_bytes("a", 0).is_err());
        assert!(a.get_bytes("b", 0).is_err());
        assert!(a.get_bytes("c", 0).is_err(), "overflow is an error, not a wrap");
    }

    #[test]
    fn typed_parse_errors_are_informative() {
        let a = parse(&argv("search --top-k five")).unwrap();
        let err = a.get_or::<usize>("top-k", 20).unwrap_err();
        assert!(err.contains("five"));
    }
}
