//! The zero-copy storage property: a `WikiSearch` opened from a
//! memory-mapped `.wsnap` snapshot is **byte-identical** to one built on
//! the heap from the same graph — answers, score bits, statistics and
//! keyword analysis — for every backend, for shard counts {1, 4}, for
//! cache hits as well as misses, and for budget-error responses.
//!
//! This is the differential suite the storage refactor is pinned by: the
//! engines never learn which backing they run on, so the only way this
//! can hold is if the mapped columns carry exactly the heap columns'
//! bytes (floats included) and the embedded index and stored average
//! distance reproduce the heap build's to the bit.

use central::QueryBudget;
use kgraph::{GraphBuilder, KnowledgeGraph};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use wikisearch_engine::{compile_snapshot, Backend, WikiSearch, WikiSearchResult};

const WORDS: &[&str] = &["alpha", "beta", "gamma", "delta", "omega", "sigma", "kappa", "lambda"];

/// Every backend pair the property runs under (thread counts deliberately
/// small — determinism must not depend on them).
fn backends() -> Vec<Backend> {
    vec![
        Backend::Sequential,
        Backend::ParCpu(3),
        Backend::GpuStyle(2),
        Backend::DynPar(3),
    ]
}

const SHARD_COUNTS: &[usize] = &[1, 4];

#[derive(Debug, Clone)]
struct Case {
    texts: Vec<Vec<usize>>,     // word indices per node
    edges: Vec<(usize, usize)>, // node index pairs
    queries: Vec<Vec<usize>>,   // word indices per query
    top_k: usize,
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (2usize..20).prop_flat_map(|nodes| {
        let texts =
            proptest::collection::vec(proptest::collection::vec(0usize..WORDS.len(), 1..3), nodes);
        let edges = proptest::collection::vec((0usize..nodes, 0usize..nodes), 1..40);
        let queries =
            proptest::collection::vec(proptest::collection::vec(0usize..WORDS.len(), 1..4), 1..4);
        let top_k = 1usize..6;
        (texts, edges, queries, top_k).prop_map(|(texts, edges, queries, top_k)| Case {
            texts,
            edges,
            queries,
            top_k,
        })
    })
}

fn build_graph(case: &Case) -> KnowledgeGraph {
    let mut b = GraphBuilder::new();
    for (i, words) in case.texts.iter().enumerate() {
        let text: Vec<&str> = words.iter().map(|&w| WORDS[w]).collect();
        b.add_node(&format!("n{i}"), &text.join(" "));
    }
    for (idx, &(s, d)) in case.edges.iter().enumerate() {
        if s != d {
            let s = b.node(&format!("n{s}")).unwrap();
            let d = b.node(&format!("n{d}")).unwrap();
            b.add_edge(s, d, if idx % 3 == 0 { "p" } else { "q" });
        }
    }
    b.build()
}

fn tmp() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "ws-mmap-eq-{}-{}.wsnap",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Everything observable about a result, floats as exact bits.
fn digest(ws: &WikiSearch, r: &WikiSearchResult) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    write!(
        s,
        "groups:{:?} unmatched:{:?} kwf:{} ",
        r.query.groups,
        r.query.unmatched,
        r.kwf.to_bits()
    )
    .unwrap();
    write!(
        s,
        "stats:{}/{}/{}/{:?} ",
        r.stats.last_level, r.stats.central_candidates, r.stats.peak_frontier, r.stats.trace
    )
    .unwrap();
    for a in &r.answers {
        write!(
            s,
            "[c:{} d:{} n:{:?} e:{:?} kn:{:?} ke:{:?} s:{}]",
            ws.graph().node_key(a.central),
            a.depth,
            a.nodes,
            a.edges,
            a.keyword_nodes,
            a.keyword_edges,
            a.score.to_bits()
        )
        .unwrap();
    }
    s
}

/// Run the same query stream against both engines and compare digests.
/// Each query runs twice so the second hit is answered from the result
/// cache on both sides — cached responses must match too.
fn assert_equivalent(
    heap: &WikiSearch,
    mapped: &WikiSearch,
    case: &Case,
    label: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        heap.params().average_distance.to_bits(),
        mapped.params().average_distance.to_bits(),
        "stored A diverged from the sampled one ({})",
        label
    );
    for q in &case.queries {
        let raw: Vec<&str> = q.iter().map(|&w| WORDS[w]).collect();
        let raw = raw.join(" ");
        for pass in 0..2 {
            let a = heap.search(&raw);
            let b = mapped.search(&raw);
            prop_assert_eq!(
                digest(heap, &a),
                digest(mapped, &b),
                "digest diverged ({}, query {:?}, pass {})",
                label,
                &raw,
                pass
            );
        }
        // A starved expansion budget must fail identically on both
        // backings (same structured error kind and text).
        let starved = QueryBudget::unlimited().with_max_expansions(1);
        let ea = heap.try_search(&raw, &starved);
        let eb = mapped.try_search(&raw, &starved);
        match (ea, eb) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(digest(heap, &a), digest(mapped, &b), "({})", label);
            }
            (Err(a), Err(b)) => {
                prop_assert_eq!(a.kind(), b.kind(), "({})", label);
                prop_assert_eq!(a.to_string(), b.to_string(), "({})", label);
            }
            (a, b) => {
                return Err(TestCaseError::Fail(format!(
                    "budget outcome diverged ({label}): heap {:?} vs mapped {:?}",
                    a.map(|r| r.answers.len()),
                    b.map(|r| r.answers.len()),
                )));
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn mmap_equivalence(case in case_strategy()) {
        let g = build_graph(&case);
        let path = tmp();
        compile_snapshot(&g, &path).unwrap();

        for backend in backends() {
            for &shards in SHARD_COUNTS {
                let mut heap = WikiSearch::open_sharded(g.clone(), backend, shards);
                let mut mapped =
                    WikiSearch::open_snapshot_sharded(&path, backend, shards).unwrap();
                prop_assert!(mapped.is_memory_mapped());
                prop_assert!(!heap.is_memory_mapped());
                let mut params = heap.params().clone();
                params.top_k = case.top_k;
                heap.set_params(params.clone());
                mapped.set_params(params);
                // Identical small caches on both sides: the second pass
                // of every query is a cache hit.
                heap.set_cache_capacity(1 << 20);
                mapped.set_cache_capacity(1 << 20);
                let label = format!("{backend:?}/shards={shards}");
                assert_equivalent(&heap, &mapped, &case, &label)?;
            }
        }
        let _ = std::fs::remove_file(path);
    }
}

/// The index embedded in a compiled snapshot *is* the index the heap
/// build constructs: same terms, same posting lists, straight from the
/// mapping (not rebuilt).
#[test]
fn snapshot_index_matches_heap_index() {
    let mut b = GraphBuilder::new();
    let x = b.add_node("Q1", "alpha beta");
    let y = b.add_node("Q2", "beta gamma");
    let z = b.add_node("Q3", "gamma alpha");
    b.add_edge(x, y, "p");
    b.add_edge(y, z, "q");
    let g = b.build();
    let path = tmp();
    compile_snapshot(&g, &path).unwrap();
    let mapped = WikiSearch::open_snapshot(&path, Backend::Sequential).unwrap();
    assert!(mapped.index().is_memory_mapped(), "index must come from the mapping");
    let heap = WikiSearch::build_with(g, Backend::Sequential);
    assert_eq!(heap.index().num_terms(), mapped.index().num_terms());
    for (term, freq) in heap.index().term_frequencies() {
        assert_eq!(mapped.index().frequency(term), freq, "{term}");
        assert_eq!(heap.index().lookup_analyzed(term), mapped.index().lookup_analyzed(term));
    }
    let _ = std::fs::remove_file(path);
}
