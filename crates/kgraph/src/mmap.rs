//! Read-only memory mapping of snapshot files.
//!
//! The build environment vendors no `memmap` crate, so this module talks
//! to the platform directly: on Unix it declares the tiny `mmap`/`munmap`
//! FFI surface itself (the symbols come from the C runtime every Rust
//! binary already links), on other platforms it degrades to reading the
//! file into an owned buffer — same API, no zero-copy, everything still
//! works.
//!
//! A [`Mmap`] is immutable (`PROT_READ`, `MAP_PRIVATE`) and `Send + Sync`;
//! columns reference it through an `Arc` so the mapping lives exactly as
//! long as the last view into it.

use std::fs::File;
use std::io;

/// A read-only mapping (or, on non-Unix hosts, an owned copy) of a file.
pub struct Mmap {
    ptr: *const u8,
    len: usize,
    /// Owned fallback buffer; `None` when `ptr` is a real mapping.
    fallback: Option<Vec<u8>>,
}

// Safety: the mapping is read-only for its whole lifetime and the fd is
// not retained, so sharing across threads is sound.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

impl Mmap {
    /// Map `file` read-only in its entirety.
    ///
    /// Zero-length files produce a valid empty mapping without touching
    /// the syscall (Linux rejects `mmap(len = 0)`).
    pub fn map_readonly(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
        if len == 0 {
            return Ok(Mmap {
                ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(),
                len: 0,
                fallback: None,
            });
        }
        Self::map_impl(file, len)
    }

    #[cfg(unix)]
    fn map_impl(file: &File, len: usize) -> io::Result<Mmap> {
        use std::os::unix::io::AsRawFd;
        // Safety: fd is valid for the duration of the call; we request a
        // fresh read-only private mapping and check the result.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 || ptr.is_null() {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap { ptr: ptr as *const u8, len, fallback: None })
    }

    #[cfg(not(unix))]
    fn map_impl(file: &File, len: usize) -> io::Result<Mmap> {
        use std::io::Read;
        let mut buf = Vec::with_capacity(len);
        let mut f = file.try_clone()?;
        f.read_to_end(&mut buf)?;
        let ptr = buf.as_ptr();
        Ok(Mmap { ptr, len: buf.len(), fallback: Some(buf) })
    }

    /// Base address of the mapping.
    #[inline]
    pub fn as_ptr(&self) -> *const u8 {
        self.ptr
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` for an empty mapping.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The mapped bytes as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        // Safety: ptr/len describe a live read-only mapping (or owned
        // buffer) for the lifetime of `self`.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// `true` when this is a genuine kernel mapping rather than the
    /// non-Unix owned-buffer fallback.
    pub fn is_real_mapping(&self) -> bool {
        self.len > 0 && self.fallback.is_none()
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        if self.len > 0 && self.fallback.is_none() {
            // Safety: ptr/len came from a successful mmap and are
            // unmapped exactly once.
            unsafe {
                sys::munmap(self.ptr as *mut std::os::raw::c_void, self.len);
            }
        }
    }
}

impl std::ops::Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("kgraph-mmap-{}-{name}", std::process::id()))
    }

    #[test]
    fn maps_file_contents_readonly() {
        let path = tmp("basic");
        let mut f = File::create(&path).unwrap();
        f.write_all(b"hello mapping").unwrap();
        f.sync_all().unwrap();
        let m = Mmap::map_readonly(&File::open(&path).unwrap()).unwrap();
        assert_eq!(&m[..], b"hello mapping");
        assert_eq!(m.len(), 13);
        #[cfg(unix)]
        assert!(m.is_real_mapping());
        drop(m);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = tmp("empty");
        File::create(&path).unwrap();
        let m = Mmap::map_readonly(&File::open(&path).unwrap()).unwrap();
        assert!(m.is_empty());
        assert_eq!(m.as_slice(), &[] as &[u8]);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn mapping_is_shareable_across_threads() {
        let path = tmp("threads");
        std::fs::write(&path, vec![7u8; 4096 * 3]).unwrap();
        let m = std::sync::Arc::new(Mmap::map_readonly(&File::open(&path).unwrap()).unwrap());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = std::sync::Arc::clone(&m);
                s.spawn(move || assert!(m.iter().all(|&b| b == 7)));
            }
        });
        let _ = std::fs::remove_file(path);
    }
}
