//! One module per reproduced table/figure. Each exposes `run()`, which
//! prints the paper-style output and writes a JSON record.

pub mod blinks_cost;
pub mod cache_hit_rate;
pub mod cold_start;
pub mod effectiveness;
pub mod exp1_knum;
pub mod exp2_topk;
pub mod exp3_alpha;
pub mod exp4_threads;
pub mod fig3_activation;
pub mod gpu_projection;
pub mod rclique_sensitivity;
pub mod table2_datasets;
pub mod table4_storage;
pub mod throughput;

use central::engine::{DynParEngine, GpuStyleEngine, KeywordSearchEngine, ParCpuEngine, SeqEngine};
use central::{PhaseProfile, SearchParams, SearchSession};
use kgraph::KnowledgeGraph;
use textindex::ParsedQuery;

/// The engine lineup of the paper's efficiency experiments.
pub fn engine_lineup(threads: usize) -> Vec<Box<dyn KeywordSearchEngine>> {
    vec![
        Box::new(GpuStyleEngine::new(threads)),
        Box::new(ParCpuEngine::new(threads)),
        Box::new(DynParEngine::new(threads)),
    ]
}

/// A single-threaded reference engine (Exp-4's `Tnum = 1`).
pub fn sequential_engine() -> Box<dyn KeywordSearchEngine> {
    Box::new(SeqEngine::new())
}

/// Run one engine over a query batch, returning the mean per-phase
/// profile (the paper averages 50 queries per datapoint). The batch runs
/// through one reusable [`SearchSession`], so all but the first query
/// take the warm allocation-free path — the datapoints measure search
/// work, not allocator traffic.
pub fn mean_profile_over(
    engine: &dyn KeywordSearchEngine,
    graph: &KnowledgeGraph,
    queries: &[ParsedQuery],
    params: &SearchParams,
) -> PhaseProfile {
    let mut session = SearchSession::new();
    let profiles: Vec<PhaseProfile> = queries
        .iter()
        .map(|q| engine.search_session(&mut session, graph, q, params).profile)
        .collect();
    central::profile::mean_profile(&profiles)
}
