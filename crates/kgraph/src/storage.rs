//! Memory accounting, reproducing the paper's Table IV methodology.
//!
//! The paper reports, for the GPU engine, a **pre-storage** cost (node
//! weights + CSR adjacency) and a **maximum running storage** cost
//! (pre-storage + `FIdentifier` + `CIdentifier` + the node-keyword matrix
//! `M`). Text/content is explicitly excluded ("can be stored in external
//! memory"), so we exclude node/label strings here too and account for
//! exactly the arrays the search engine touches.

use crate::graph::{Adjacency, KnowledgeGraph};
use serde::{Deserialize, Serialize};

/// Byte-level accounting of one dataset's search-time storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryFootprint {
    /// CSR offset array bytes.
    pub csr_offsets: usize,
    /// CSR adjacency entry bytes.
    pub csr_adjacency: usize,
    /// Normalized node-weight array bytes.
    pub node_weights: usize,
    /// `FIdentifier` frontier-flag array bytes (one byte per node).
    pub f_identifier: usize,
    /// `CIdentifier` central-flag array bytes (one byte per node).
    pub c_identifier: usize,
    /// Node-keyword matrix `M` bytes (`|V| × q`, one byte per hitting level).
    pub node_keyword_matrix: usize,
    /// Frontier queue worst-case bytes (`|V|` node ids).
    pub frontier_queue: usize,
}

impl MemoryFootprint {
    /// Footprint of searching `g` with `knum` query keywords.
    pub fn for_search(g: &KnowledgeGraph, knum: usize) -> Self {
        let n = g.num_nodes();
        MemoryFootprint {
            csr_offsets: (n + 1) * std::mem::size_of::<u64>(),
            csr_adjacency: g.num_adjacency_entries() * std::mem::size_of::<Adjacency>(),
            node_weights: n * std::mem::size_of::<f32>(),
            f_identifier: n,
            c_identifier: n,
            node_keyword_matrix: n * knum,
            frontier_queue: n * std::mem::size_of::<u32>(),
        }
    }

    /// The paper's "pre-storage": weights + adjacency in CSR.
    pub fn pre_storage(&self) -> usize {
        self.csr_offsets + self.csr_adjacency + self.node_weights
    }

    /// The paper's "max. running storage": pre-storage + per-search state.
    pub fn max_running_storage(&self) -> usize {
        self.pre_storage()
            + self.f_identifier
            + self.c_identifier
            + self.node_keyword_matrix
            + self.frontier_queue
    }

    /// Format bytes the way Table IV does (GB with two decimals for large
    /// values, otherwise MB/KB).
    pub fn human(bytes: usize) -> String {
        const KB: f64 = 1024.0;
        let b = bytes as f64;
        if b >= KB * KB * KB {
            format!("{:.2}GB", b / (KB * KB * KB))
        } else if b >= KB * KB {
            format!("{:.2}MB", b / (KB * KB))
        } else if b >= KB {
            format!("{:.2}KB", b / KB)
        } else {
            format!("{bytes}B")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn small() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let x = b.add_node("x", "x");
        let y = b.add_node("y", "y");
        b.add_edge(x, y, "p");
        b.build()
    }

    #[test]
    fn footprint_components_add_up() {
        let g = small();
        let f = MemoryFootprint::for_search(&g, 8);
        assert_eq!(f.csr_adjacency, 2 * 8, "two 8-byte adjacency entries");
        assert_eq!(f.node_keyword_matrix, 2 * 8);
        assert_eq!(
            f.max_running_storage(),
            f.pre_storage()
                + f.f_identifier
                + f.c_identifier
                + f.node_keyword_matrix
                + f.frontier_queue
        );
    }

    #[test]
    fn matrix_grows_linearly_with_keywords() {
        let g = small();
        let f4 = MemoryFootprint::for_search(&g, 4);
        let f8 = MemoryFootprint::for_search(&g, 8);
        assert_eq!(f8.node_keyword_matrix, 2 * f4.node_keyword_matrix);
        assert_eq!(f8.pre_storage(), f4.pre_storage(), "pre-storage is query independent");
    }

    #[test]
    fn human_formatting() {
        assert_eq!(MemoryFootprint::human(512), "512B");
        assert_eq!(MemoryFootprint::human(2048), "2.00KB");
        assert_eq!(MemoryFootprint::human(3 * 1024 * 1024), "3.00MB");
        assert_eq!(MemoryFootprint::human(5 * 1024 * 1024 * 1024), "5.00GB");
    }

    #[test]
    fn paper_scale_sanity_check() {
        // The paper's example: 30M nodes × 10 keywords ⇒ a 300MB matrix.
        let f = MemoryFootprint {
            csr_offsets: 0,
            csr_adjacency: 0,
            node_weights: 0,
            f_identifier: 0,
            c_identifier: 0,
            node_keyword_matrix: 30_000_000 * 10,
            frontier_queue: 0,
        };
        assert_eq!(MemoryFootprint::human(f.node_keyword_matrix), "286.10MB");
    }
}
