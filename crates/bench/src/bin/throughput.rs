//! Service-level throughput: queries/sec vs concurrent clients on one
//! shared engine (the session-pool scaling experiment).
fn main() {
    wikisearch_bench::experiments::throughput::run();
}
