//! Regenerates the paper's Table II. See `wikisearch-bench` docs.
fn main() {
    wikisearch_bench::experiments::table2_datasets::run();
}
