//! Query workloads: an embedded CS keyword-phrase vocabulary in the style
//! of the AAAI'14 accepted-paper keyword lists the paper samples from
//! (UCI repository), and a seeded sampler producing `Knum`-keyword queries.

use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::SeedableRng;

/// Keyword phrases in the style of AAAI'14 paper keywords. Multi-word
/// phrases matter: the effectiveness experiments hinge on whether engines
/// keep phrase words together (paper Sec. VI-B).
pub static VOCAB: &[&str] = &[
    "machine learning",
    "deep learning",
    "reinforcement learning",
    "supervised learning",
    "unsupervised learning",
    "transfer learning",
    "active learning",
    "online learning",
    "statistical relational learning",
    "multi task learning",
    "metric learning",
    "representation learning",
    "feature selection",
    "feature extraction",
    "dimensionality reduction",
    "neural network",
    "convolutional network",
    "recurrent network",
    "belief network",
    "bayesian inference",
    "bayesian network",
    "markov network",
    "markov decision process",
    "hidden markov model",
    "probabilistic inference",
    "variational inference",
    "graphical model",
    "latent variable model",
    "topic model",
    "gaussian process",
    "kernel method",
    "support vector machine",
    "decision tree",
    "random forest",
    "gradient descent",
    "stochastic optimization",
    "convex optimization",
    "combinatorial optimization",
    "integer programming",
    "linear programming",
    "constraint satisfaction",
    "heuristic search",
    "monte carlo tree search",
    "game theory",
    "mechanism design",
    "social choice",
    "multi agent system",
    "agent based simulation",
    "automated planning",
    "task scheduling",
    "knowledge representation",
    "knowledge base",
    "knowledge graph",
    "ontology matching",
    "description logic",
    "answer set programming",
    "logic programming",
    "theorem proving",
    "model checking",
    "satisfiability solving",
    "belief revision",
    "argumentation framework",
    "natural language processing",
    "machine translation",
    "question answering",
    "information extraction",
    "named entity recognition",
    "relation extraction",
    "semantic parsing",
    "sentiment analysis",
    "text classification",
    "text summarization",
    "word embedding",
    "language model",
    "dialogue system",
    "speech recognition",
    "information retrieval",
    "document ranking",
    "query expansion",
    "relevance feedback",
    "learning to rank",
    "recommender system",
    "collaborative filtering",
    "matrix factorization",
    "data mining",
    "pattern mining",
    "association rule",
    "anomaly detection",
    "outlier detection",
    "cluster analysis",
    "spectral clustering",
    "community detection",
    "graph mining",
    "graph partitioning",
    "graph embedding",
    "link prediction",
    "social network analysis",
    "influence maximization",
    "network diffusion",
    "keyword search",
    "database indexing",
    "query optimization",
    "query processing",
    "relational database",
    "distributed database",
    "parallel computing",
    "distributed computing",
    "cloud computing",
    "stream processing",
    "data integration",
    "entity resolution",
    "schema matching",
    "data cleaning",
    "data warehousing",
    "column store",
    "transaction processing",
    "concurrency control",
    "crash recovery",
    "consensus protocol",
    "computer vision",
    "object detection",
    "image segmentation",
    "image classification",
    "face recognition",
    "pose estimation",
    "scene understanding",
    "optical flow",
    "image retrieval",
    "visual question answering",
    "video analysis",
    "action recognition",
    "crowdsourcing",
    "human computation",
    "preference elicitation",
    "utility theory",
    "causal inference",
    "counterfactual reasoning",
    "spatial reasoning",
    "temporal reasoning",
    "case based reasoning",
    "commonsense reasoning",
    "qualitative reasoning",
    "evolutionary algorithm",
    "genetic programming",
    "swarm intelligence",
    "local search",
    "simulated annealing",
    "tabu search",
    "branch and bound",
    "dynamic programming",
    "approximation algorithm",
    "online algorithm",
    "streaming algorithm",
    "sketching technique",
    "privacy preservation",
    "differential privacy",
    "secure computation",
    "adversarial example",
    "robust optimization",
    "sparse coding",
    "compressed sensing",
    "signal processing",
    "time series analysis",
    "sequence labeling",
    "structured prediction",
    "label propagation",
    "semi supervised learning",
    "self supervised learning",
    "few shot learning",
    "zero shot learning",
    "domain adaptation",
    "concept drift",
    "incremental learning",
    "ensemble method",
    "boosting algorithm",
    "bagging predictor",
    "model selection",
    "hyperparameter tuning",
    "cross validation",
    "bias variance tradeoff",
    "explainable model",
    "interpretable model",
    "fairness constraint",
    "algorithmic bias",
    "medical diagnosis",
    "clinical decision support",
    "drug discovery",
    "bioinformatics pipeline",
    "gene expression",
    "protein structure",
    "medicine retrieval",
    "health informatics",
    "sensor network",
    "internet of things",
    "edge computing",
    "mobile computing",
    "wireless network",
    "network protocol",
    "traffic prediction",
    "route planning",
    "autonomous driving",
    "robot navigation",
    "motion planning",
    "simultaneous localization",
    "auction mechanism",
    "resource allocation",
    "load balancing",
    "cache replacement",
    "memory hierarchy",
    "hardware acceleration",
    "gpu computing",
    "vector processing",
    "xml retrieval",
    "rdf store",
    "sparql endpoint",
    "semantic web",
    "linked data",
    "triple store",
    "entity linking",
    "wikidata curation",
    "freebase migration",
    "web crawling",
    "web search",
    "search engine",
];

/// A reproducible stream of keyword queries with a target keyword count.
///
/// Mirrors the paper's workload: "For each Knum, we randomly select 50
/// keyword queries from keyword lists of all accepted (over 300) papers in
/// AAAI'14".
pub struct QueryWorkload {
    rng: StdRng,
}

impl QueryWorkload {
    /// Workload with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        QueryWorkload { rng: StdRng::seed_from_u64(seed) }
    }

    /// One query with exactly `knum` distinct keywords, assembled from
    /// whole vocabulary phrases (so multi-word phrases stay adjacent, as
    /// they do in real paper-keyword queries).
    pub fn query(&mut self, knum: usize) -> String {
        let mut words: Vec<String> = Vec::with_capacity(knum);
        let mut guard = 0;
        while words.len() < knum && guard < 1000 {
            guard += 1;
            let phrase = VOCAB.choose(&mut self.rng).expect("vocab non-empty");
            for w in phrase.split_whitespace() {
                if words.len() < knum && !words.iter().any(|x| x == w) {
                    words.push(w.to_string());
                }
            }
        }
        words.join(" ")
    }

    /// A batch of `count` queries at `knum` keywords each (one Exp-1
    /// datapoint's workload).
    pub fn batch(&mut self, knum: usize, count: usize) -> Vec<String> {
        (0..count).map(|_| self.query(knum)).collect()
    }

    /// Sample a raw vocabulary phrase (e.g. for labeling generated nodes).
    pub fn phrase(&mut self) -> &'static str {
        VOCAB.choose(&mut self.rng).expect("vocab non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocab_is_nontrivial_and_multi_word() {
        assert!(VOCAB.len() >= 200);
        assert!(VOCAB.iter().all(|p| !p.trim().is_empty()));
        let multi = VOCAB.iter().filter(|p| p.contains(' ')).count();
        assert!(multi as f64 / VOCAB.len() as f64 > 0.9, "phrases should dominate");
    }

    #[test]
    fn queries_have_exact_keyword_count() {
        let mut w = QueryWorkload::new(7);
        for knum in [2, 4, 6, 8, 10] {
            let q = w.query(knum);
            let words: Vec<&str> = q.split_whitespace().collect();
            assert_eq!(words.len(), knum, "query {q:?}");
            let mut dedup = words.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), knum, "keywords must be distinct in {q:?}");
        }
    }

    #[test]
    fn phrases_come_from_the_vocabulary() {
        let mut w = QueryWorkload::new(3);
        for _ in 0..20 {
            assert!(VOCAB.contains(&w.phrase()));
        }
    }

    #[test]
    fn workload_is_deterministic_per_seed() {
        let a = QueryWorkload::new(42).batch(6, 10);
        let b = QueryWorkload::new(42).batch(6, 10);
        assert_eq!(a, b);
        let c = QueryWorkload::new(43).batch(6, 10);
        assert_ne!(a, c);
    }
}
