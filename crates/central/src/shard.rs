//! In-process sharded scatter-gather search: an edge-cut graph
//! partitioner with boundary-node replication, per-shard local search over
//! the existing session machinery, and a level-synchronous coordinator
//! that exchanges frontier/hitting-level state across shard boundaries
//! between BFS rounds.
//!
//! This is phase 1 of the distributed design sketched by DKWS
//! (arXiv:2309.01199): every shard runs the paper's two-stage algorithm
//! *locally* on its sub-graph, and the only cross-shard traffic is the
//! per-round exchange of newly hit boundary cells. Because all shards
//! live in one process, "traffic" here is a vector of `(node, instance)`
//! pairs — but the protocol (scatter, local expand, boundary exchange,
//! merge) is exactly what a cross-process split will reuse.
//!
//! ## Partitioning ([`ShardPlan`])
//!
//! Node ownership is a deterministic seeded hash: `owner(v) =
//! splitmix64(seed ^ v) mod N`. Each [`ShardPart`] materializes
//!
//! * its **owned** nodes, assigned local ids `0..num_owned` in ascending
//!   global-id order (this makes per-shard frontier scans produce
//!   globally ordered cohorts, which the answer-identity proof relies
//!   on);
//! * **halo** replicas of every remote-owned node adjacent to an owned
//!   node, with local ids after the owned block;
//! * a local CSR sub-graph holding every global directed edge incident
//!   to an owned node (owned nodes have *complete* adjacency; halos have
//!   partial adjacency and are never expanded);
//! * per-node weights copied from the global graph
//!   ([`kgraph::KnowledgeGraph::override_weights`]) so activation levels
//!   and Eq. 6 scores are identical to the monolithic engine's — the
//!   builder would otherwise re-normalize over the shard-local maximum;
//! * the **boundary** (frontier-exchange) table: local ids of every node
//!   replicated in more than one shard.
//!
//! ## The round protocol ([`ShardedSearch`])
//!
//! The coordinator mirrors [`crate::bottom_up::run`] phase for phase; the
//! global level barrier is simply a fork-join over the shard lanes:
//!
//! 1. **enqueue** (parallel): each shard drains the frontier flags of its
//!    *owned* nodes — every global frontier node is counted exactly once,
//!    by its owner.
//! 2. **identify** (parallel): [`crate::bottom_up::identify_sequential`]
//!    over each shard's owned frontiers; the owner's replica always holds
//!    the complete `M` row (see the sync invariant below).
//! 3. **merge** (coordinator): per-shard cohorts map back to global ids
//!    and merge in ascending order — the same within-level order the
//!    monolithic frontier scan produces.
//! 4. **expand** (parallel): the backend's expansion kernel runs over
//!    each shard's owned frontiers against its local sub-graph, charging
//!    the one shared [`crate::budget::BudgetTracker`].
//! 5. **exchange** (coordinator): each shard scans its boundary table for
//!    cells that became `level + 1` this round; the coordinator dedups
//!    the union and broadcasts each surviving `(node, instance)` pair to
//!    every holder whose replica still reads `∞`.
//!
//! The dedup in step 5 is the synchronous degenerate form of DKWS's
//! monotone upper-bound pruning: in a level-synchronous search every
//! notification generated during round `l` carries the same level
//! `l + 1`, so a notification is useful iff the receiving replica has no
//! finite level yet — anything else cannot lower the bound and is
//! dropped ([`ShardedStats::notifications_suppressed`] counts these).
//!
//! **Sync invariant:** at every round boundary, all replicas of a node
//! carry identical `M` rows. Seeding establishes it (each shard's
//! localized query seeds keyword sources on owned *and* halo replicas),
//! and step 5 restores it after each round (every newly finite boundary
//! cell is broadcast to every holder). Within a round, writes race only
//! with equal-valued writes (Theorem V.2 of the paper, unchanged).
//! Identification therefore sees exactly the monolithic `M`, and the
//! byte-identity of answers, stats and traces follows — which is what the
//! `shard_equivalence` differential suite pins.
//!
//! ## Top-down
//!
//! Extraction and pruning run over the *global* graph through a
//! [`crate::state::HitLevels`] adapter that routes each node to its
//! owner's state (authoritative by the sync invariant), so the top-down
//! stage is byte-for-byte the monolithic one.
//!
//! ## Serving semantics
//!
//! One query checks out one session per shard (each shard has its own
//! [`SessionPool`]); a panic unwinding through the coordinator quarantines
//! all of them, so the facade's panic-isolation contract survives
//! sharding (`quarantined` grows by `N` per poisoned query, which the
//! sharded soak test accounts for exactly). Budgets and deadlines are
//! enforced by the single shared tracker at the same points the
//! monolithic driver polls it. The `CPU-Par-d` backend runs its shards on
//! the matrix substrate: the dynamic-memory engine is answer- and
//! trace-identical to the matrix engines (pinned by the workspace
//! differential tests), so the sharded path reuses the matrix kernels for
//! all four backend names.

use crate::activation::{ActivationConfig, ActivationMap};
use crate::bottom_up::{self, ExpandCtx, LevelTrace, TerminationReason};
use crate::budget::QueryBudget;
use crate::engine::{SearchOutcome, SearchStats};
use crate::error::SearchError;
use crate::model::{CentralGraph, INFINITE_LEVEL};
use crate::pool::{PoolStats, SessionPool};
use crate::profile::PhaseProfile;
use crate::state::{HitLevels, SearchState};
use crate::top_down;
use crate::trace::{PhaseMillis, QueryTrace, TraceLevelRecord};
use crate::SearchParams;
use kgraph::{GraphBuilder, KnowledgeGraph, NodeId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use textindex::{KeywordGroup, ParsedQuery};

/// Default ownership-hash seed. Any fixed seed yields a valid (and
/// deterministic) partition; this one is the splitmix64 increment.
pub const DEFAULT_PARTITION_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// The splitmix64 finalizer — a cheap, well-mixed hash for node→shard
/// assignment. Deterministic across runs and platforms. Shared with the
/// remote coordinator, which replays the ownership hash when merging
/// degraded-mode row collections.
#[inline]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One shard of an edge-cut partition: the local sub-graph plus the id
/// maps and boundary table the coordinator routes through.
pub struct ShardPart {
    /// Local CSR sub-graph: owned nodes first (complete adjacency), then
    /// halo replicas (partial adjacency, never expanded). Node weights
    /// are copied from the global graph.
    pub graph: KnowledgeGraph,
    /// Local id → global id. The first [`ShardPart::num_owned`] entries
    /// are the owned nodes in ascending global order; the rest are halos,
    /// also ascending.
    pub locals: Vec<u32>,
    /// Global id → local id — the inverse of [`ShardPart::locals`].
    pub local_index: HashMap<u32, u32>,
    /// Number of owned nodes; local ids `0..num_owned` are owned.
    pub num_owned: u32,
    /// Frontier-exchange table: local ids (ascending) of every node
    /// replicated in more than one shard — owned boundary nodes and all
    /// halos.
    pub boundary: Vec<u32>,
}

impl ShardPart {
    /// Remap a global query onto this shard: same groups in the same
    /// order (the BFS instance identity must agree across shards), node
    /// sets restricted to the replicas — owned *and* halo — present
    /// here. Halo sources must be seeded too, or a shard expanding into
    /// an unseeded source replica would treat it as unhit.
    pub(crate) fn localize_query(&self, query: &ParsedQuery) -> ParsedQuery {
        ParsedQuery {
            groups: query
                .groups
                .iter()
                .map(|g| KeywordGroup {
                    term: g.term.clone(),
                    nodes: g
                        .nodes
                        .iter()
                        .filter_map(|v| self.local_index.get(&v.0).map(|&l| NodeId(l)))
                        .collect(),
                })
                .collect(),
            unmatched: query.unmatched.clone(),
        }
    }
}

/// A deterministic edge-cut partition of a [`KnowledgeGraph`] into `N`
/// sub-graphs with boundary-node replication.
pub struct ShardPlan {
    /// Number of shards `N ≥ 1`.
    pub shards: usize,
    /// Seed of the ownership hash.
    pub seed: u64,
    /// Global node id → owning shard.
    pub owner: Vec<u32>,
    /// The `N` shard parts.
    pub parts: Vec<ShardPart>,
    /// For every node replicated in more than one shard: the shards
    /// holding a replica (owner first, then halo shards ascending).
    pub holders: HashMap<u32, Vec<u32>>,
}

/// The assignment phase of partitioning, shared by [`ShardPlan::build`]
/// (which materializes every part) and [`ShardPlan::build_part`] (which
/// materializes exactly one — what a remote shard worker does, so a
/// worker never pays for the other `N − 1` sub-graphs). Deterministic in
/// `(graph, shards, seed)`.
struct Assignment {
    owner: Vec<u32>,
    halos: Vec<std::collections::BTreeSet<u32>>,
    holders: HashMap<u32, Vec<u32>>,
}

fn assign(graph: &KnowledgeGraph, shards: usize, seed: u64) -> Assignment {
    assert!(shards >= 1, "a plan needs at least one shard");
    let n = graph.num_nodes();
    let owner: Vec<u32> =
        (0..n as u64).map(|v| (splitmix64(seed ^ v) % shards as u64) as u32).collect();

    // Halo sets: v is a halo of shard s iff owner[v] != s and v is
    // adjacent to a node owned by s. The bi-directed CSR lists every
    // incident edge from both endpoints, so one pass over all
    // adjacency covers both directions.
    let mut halos: Vec<std::collections::BTreeSet<u32>> =
        (0..shards).map(|_| Default::default()).collect();
    for v in 0..n as u32 {
        let ov = owner[v as usize];
        for adj in graph.neighbors(NodeId(v)) {
            let ou = owner[adj.target().index()];
            if ou != ov {
                halos[ou as usize].insert(v);
            }
        }
    }

    // Replica holders: owner first, then halo shards in ascending
    // shard order. Only replicated nodes get an entry.
    let mut holders: HashMap<u32, Vec<u32>> = HashMap::new();
    for (s, halo) in halos.iter().enumerate() {
        for &v in halo {
            holders.entry(v).or_insert_with(|| vec![owner[v as usize]]).push(s as u32);
        }
    }
    Assignment { owner, halos, holders }
}

impl Assignment {
    /// Materialize shard `s`'s part: local id maps, sub-graph, weights
    /// and boundary table.
    fn materialize(&self, graph: &KnowledgeGraph, s: usize) -> ShardPart {
        let n = graph.num_nodes();
        let owned: Vec<u32> =
            (0..n as u32).filter(|&v| self.owner[v as usize] == s as u32).collect();
        let num_owned = owned.len() as u32;
        let mut locals = owned;
        locals.extend(self.halos[s].iter().copied());
        let local_index: HashMap<u32, u32> =
            locals.iter().enumerate().map(|(l, &v)| (v, l as u32)).collect();

        // Local sub-graph: every node in local order, every global
        // directed edge incident to an owned node. A non-owned
        // endpoint of such an edge is by definition a halo, so both
        // endpoints are always present. Halo↔halo edges are omitted —
        // halos are never expanded, so their adjacency is never read.
        let mut b = GraphBuilder::with_capacity(locals.len(), locals.len() * 4);
        let ids: Vec<NodeId> = locals
            .iter()
            .map(|&v| b.add_node(graph.node_key(NodeId(v)), graph.node_text(NodeId(v))))
            .collect();
        for (l, &v) in locals.iter().enumerate().take(num_owned as usize) {
            for adj in graph.neighbors(NodeId(v)) {
                let t = local_index[&adj.target().0];
                let label = graph.label_name(adj.label());
                if adj.is_outgoing() {
                    b.add_edge(ids[l], ids[t as usize], label);
                } else if self.owner[adj.target().index()] != s as u32 {
                    // Incoming edge from a halo source; owned→owned
                    // edges are already covered by the source's
                    // outgoing pass (the builder would dedup them
                    // anyway, but skipping keeps the pass linear).
                    b.add_edge(ids[t as usize], ids[l], label);
                }
            }
        }
        let mut local_graph = b.build();
        // Global weights, not re-normalized over the shard-local max.
        let raw = locals.iter().map(|&v| graph.raw_weight(NodeId(v))).collect();
        let norm = locals.iter().map(|&v| graph.weight(NodeId(v))).collect();
        local_graph.override_weights(raw, norm);

        let boundary: Vec<u32> = locals
            .iter()
            .enumerate()
            .filter(|(_, v)| self.holders.contains_key(v))
            .map(|(l, _)| l as u32)
            .collect();
        ShardPart { graph: local_graph, locals, local_index, num_owned, boundary }
    }
}

impl ShardPlan {
    /// Partition `graph` into `shards` parts under `seed`. Handles
    /// `shards` exceeding the node count (some parts are simply empty)
    /// and the empty graph.
    pub fn build(graph: &KnowledgeGraph, shards: usize, seed: u64) -> ShardPlan {
        let a = assign(graph, shards, seed);
        let parts = (0..shards).map(|s| a.materialize(graph, s)).collect();
        ShardPlan { shards, seed, owner: a.owner, parts, holders: a.holders }
    }

    /// Materialize only shard `index`'s part of the partition — the same
    /// [`ShardPart`] that [`ShardPlan::build`] would put at
    /// `parts[index]`, without building the other `N − 1` sub-graphs. A
    /// remote shard worker calls this at startup: every worker derives
    /// its partition independently from the shared `(shards, seed)`
    /// contract, so the coordinator never ships sub-graphs over the
    /// wire.
    ///
    /// # Panics
    /// Panics when `index >= shards`.
    pub fn build_part(graph: &KnowledgeGraph, shards: usize, seed: u64, index: usize) -> ShardPart {
        assert!(index < shards, "shard index {index} out of range for {shards} shards");
        assign(graph, shards, seed).materialize(graph, index)
    }
}

/// Which expansion kernel each shard runs. Mirrors the four engine names;
/// `CPU-Par-d` shards run on the matrix substrate (the dynamic engine is
/// answer- and trace-identical, so the kernels are interchangeable).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardBackend {
    /// Sequential expansion per shard (shards still run concurrently).
    Seq,
    /// Coarse-grained rayon expansion (one task per frontier node).
    ParCpu(usize),
    /// Fine-grained GPU-style expansion (one task per work item).
    GpuStyle(usize),
    /// The dynamic-engine name, served by the matrix substrate.
    DynPar(usize),
}

impl ShardBackend {
    /// The monolithic engine name this backend corresponds to.
    pub fn base_name(&self) -> &'static str {
        match self {
            ShardBackend::Seq => "Seq",
            ShardBackend::ParCpu(_) => "CPU-Par",
            ShardBackend::GpuStyle(_) => "GPU-Par",
            ShardBackend::DynPar(_) => "CPU-Par-d",
        }
    }

    /// Worker threads the backend was configured with (1 for `Seq`).
    pub fn threads(&self) -> usize {
        match *self {
            ShardBackend::Seq => 1,
            ShardBackend::ParCpu(t) | ShardBackend::GpuStyle(t) | ShardBackend::DynPar(t) => {
                t.max(1)
            }
        }
    }
}

/// Cross-query counters of one [`ShardedSearch`].
#[derive(Default)]
struct ShardCounters {
    /// BFS rounds that ran an expansion + exchange step.
    rounds: AtomicU64,
    /// Unique `(node, instance)` boundary updates broadcast to replicas.
    notifications: AtomicU64,
    /// Outbox entries dropped by the monotone-bound dedup before
    /// broadcast.
    suppressed: AtomicU64,
}

/// A monitoring snapshot of a [`ShardedSearch`] (`STATS` / `METRICS`).
#[derive(Clone, Copy, Debug, Default, PartialEq, serde::Serialize)]
pub struct ShardedStats {
    /// Number of shards.
    pub shards: usize,
    /// Expansion/exchange rounds executed across all queries.
    pub rounds: u64,
    /// Unique boundary notifications broadcast across all queries.
    pub notifications: u64,
    /// Boundary notifications suppressed by the monotone-bound dedup.
    pub notifications_suppressed: u64,
    /// Per-shard session-pool counters, summed over all shards.
    pub pools: PoolStats,
}

/// Per-shard shared (read-only) state of one in-flight query.
struct Lane<'a> {
    part: &'a ShardPart,
    state: &'a SearchState,
    act: ActivationMap<'a>,
}

/// Per-shard mutable buffers of one in-flight query. Kept behind one
/// uncontended mutex per shard so the fork-join phases can write them
/// from pool workers (exactly one worker touches each lane per phase).
#[derive(Default)]
struct LaneBufs {
    frontiers: Vec<u32>,
    newly: Vec<u32>,
    /// `(global node, instance)` cells that became `level + 1` this round.
    outbox: Vec<(u32, u32)>,
    /// Traced-query observation: keyword cells first covered this level.
    new_hits: usize,
    /// Traced-query observation: frontier nodes still activation-gated.
    deferred: usize,
}

/// Routes global node ids to the owning shard's search state, so the
/// shared top-down stage runs over the global graph unchanged. By the
/// sync invariant the owner's replica is authoritative.
struct ShardedHitLevels<'a> {
    plan: &'a ShardPlan,
    states: Vec<&'a SearchState>,
    q: usize,
}

impl ShardedHitLevels<'_> {
    #[inline]
    fn route(&self, v: u32) -> (&SearchState, u32) {
        let s = self.plan.owner[v as usize] as usize;
        (self.states[s], self.plan.parts[s].local_index[&v])
    }
}

impl HitLevels for ShardedHitLevels<'_> {
    fn num_keywords(&self) -> usize {
        self.q
    }
    fn hit(&self, v: u32, i: usize) -> u8 {
        let (state, l) = self.route(v);
        state.hit(l, i)
    }
    fn is_keyword_node(&self, v: u32) -> bool {
        let (state, l) = self.route(v);
        state.is_keyword_node(l)
    }
    fn central_depth(&self, v: u32) -> Option<u8> {
        let (state, l) = self.route(v);
        state.central_depth(l)
    }
}

/// Scatter-gather coordinator over an in-process [`ShardPlan`]: scatters
/// a query to all shards, drives the round protocol, and merges per-shard
/// candidates into the monolithic top-(k,d) answer set. See the module
/// docs for the protocol and its identity argument.
pub struct ShardedSearch {
    plan: ShardPlan,
    pools: Vec<SessionPool>,
    compute: rayon::ThreadPool,
    backend: ShardBackend,
    name: String,
    counters: ShardCounters,
}

impl ShardedSearch {
    /// Partition `graph` into `shards` parts (default seed) and set up
    /// one session pool per shard plus a shared compute pool sized for
    /// `max(backend threads, shards)` workers.
    pub fn new(graph: &KnowledgeGraph, backend: ShardBackend, shards: usize) -> ShardedSearch {
        assert!(shards >= 1, "sharded search needs at least one shard");
        let plan = ShardPlan::build(graph, shards, DEFAULT_PARTITION_SEED);
        let pools = (0..shards).map(|_| SessionPool::new()).collect();
        let compute = crate::engine::build_pool(backend.threads().max(shards));
        let name = format!("{}[shards={shards}]", backend.base_name());
        ShardedSearch { plan, pools, compute, backend, name, counters: ShardCounters::default() }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.plan.shards
    }

    /// The partition, for introspection and tests.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Engine display name carried on traces (`"CPU-Par[shards=4]"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Monitoring snapshot: round/notification counters plus the summed
    /// per-shard pool counters.
    pub fn stats(&self) -> ShardedStats {
        let mut pools = PoolStats::default();
        for p in &self.pools {
            let s = p.stats();
            pools.queries_run += s.queries_run;
            pools.sessions_created += s.sessions_created;
            pools.idle_sessions += s.idle_sessions;
            pools.in_flight += s.in_flight;
            pools.quarantined += s.quarantined;
        }
        ShardedStats {
            shards: self.plan.shards,
            rounds: self.counters.rounds.load(Ordering::Relaxed),
            notifications: self.counters.notifications.load(Ordering::Relaxed),
            notifications_suppressed: self.counters.suppressed.load(Ordering::Relaxed),
            pools,
        }
    }

    /// Run one budgeted sharded search. Same contract as
    /// [`crate::engine::KeywordSearchEngine::try_search_session`]: a
    /// tripped budget returns `Err` and never a partial answer set, and a
    /// panic unwinding through the search quarantines every shard
    /// session it had checked out.
    ///
    /// # Panics
    /// Panics if `params` fail [`SearchParams::validate`].
    pub fn try_search(
        &self,
        graph: &KnowledgeGraph,
        query: &ParsedQuery,
        params: &SearchParams,
        budget: &QueryBudget,
    ) -> Result<SearchOutcome, SearchError> {
        use rayon::prelude::*;

        if let Err(e) = params.validate() {
            panic!("invalid search parameters: {e}");
        }
        // One session per shard, checked out for the whole query: a panic
        // from here on unwinds through all the guards and quarantines the
        // whole cohort (PooledSession::drop sees thread::panicking()).
        let mut sessions: Vec<_> = self.pools.iter().map(|p| p.checkout()).collect();
        let tracker = if params.trace.enabled() {
            budget.start_counting()
        } else {
            budget.start()
        };
        tracker.checkpoint()?;
        #[cfg(feature = "fault-inject")]
        crate::fault::inject(query, &tracker)?;
        if query.is_empty() {
            let mut out = SearchOutcome::default();
            if params.trace.enabled() {
                out.trace = Some(Box::new(QueryTrace {
                    engine: self.name.clone(),
                    ..QueryTrace::default()
                }));
            }
            return Ok(out);
        }
        let mut profile = PhaseProfile::default();
        let q = query.num_keywords();

        // Scatter: localize the query per shard (halo sources included)
        // and re-arm every shard session.
        let t = Instant::now();
        let local_queries: Vec<ParsedQuery> =
            self.plan.parts.iter().map(|p| p.localize_query(query)).collect();
        for (session, (part, lq)) in
            sessions.iter_mut().zip(self.plan.parts.iter().zip(&local_queries))
        {
            session.state.begin_query(part.graph.num_nodes(), lq);
            session.queries_run += 1;
        }
        profile.init = t.elapsed();

        let explicit = params.explicit_activation.clone();
        let config =
            ActivationConfig { alpha: params.alpha, average_distance: params.average_distance };
        // Explicit activation tables remap global → local per shard.
        let local_acts: Vec<Option<Vec<u8>>> = self
            .plan
            .parts
            .iter()
            .map(|p| {
                explicit
                    .as_ref()
                    .map(|levels| p.locals.iter().map(|&v| levels[v as usize]).collect())
            })
            .collect();
        let mut lanes: Vec<Lane<'_>> = Vec::with_capacity(self.plan.shards);
        for (s, part) in self.plan.parts.iter().enumerate() {
            let act = match &local_acts[s] {
                Some(table) => ActivationMap::Explicit(table),
                None => ActivationMap::Computed { graph: &part.graph, config },
            };
            lanes.push(Lane { part, state: sessions[s].state(), act });
        }
        let lanes = &lanes[..];
        let bufs: Vec<parking_lot::Mutex<LaneBufs>> =
            lanes.iter().map(|_| parking_lot::Mutex::new(LaneBufs::default())).collect();
        let bufs = &bufs[..];
        let shards = self.plan.shards;

        // The level-synchronous round loop — a fork-join mirror of
        // `bottom_up::run`, with the boundary exchange as step 5.
        let max_level = params.max_level.min(254);
        let backend = self.backend;
        let traced = params.trace.enabled();
        let mut cohort: Vec<(NodeId, u8)> = Vec::new();
        let mut level_trace: Vec<LevelTrace> = Vec::new();
        let mut records: Option<Vec<TraceLevelRecord>> = traced.then(Vec::new);
        let mut peak_frontier = 0usize;
        let mut level: u8 = 0;
        let terminated = loop {
            tracker.checkpoint()?;
            let t = Instant::now();
            self.compute.install(|| {
                (0..shards).into_par_iter().for_each(|s| {
                    let lane = &lanes[s];
                    let b = &mut *bufs[s].lock();
                    // Owned nodes only: halo flags are never scanned, so
                    // each global frontier node is drained exactly once.
                    b.frontiers.clear();
                    for v in 0..lane.part.num_owned {
                        if lane.state.take_frontier_flag(v) {
                            b.frontiers.push(v);
                        }
                    }
                });
            });
            profile.enqueue += t.elapsed();
            let frontier_total: usize = bufs.iter().map(|b| b.lock().frontiers.len()).sum();
            peak_frontier = peak_frontier.max(frontier_total);
            if frontier_total == 0 {
                break TerminationReason::FrontierExhausted;
            }

            let t = Instant::now();
            self.compute.install(|| {
                (0..shards).into_par_iter().for_each(|s| {
                    let lane = &lanes[s];
                    let b = &mut *bufs[s].lock();
                    bottom_up::identify_sequential(lane.state, &b.frontiers, level, &mut b.newly);
                    if traced {
                        b.new_hits = b
                            .frontiers
                            .iter()
                            .map(|&f| (0..q).filter(|&i| lane.state.hit(f, i) == level).count())
                            .sum();
                        b.deferred = b
                            .frontiers
                            .iter()
                            .filter(|&&f| lane.act.level(NodeId(f)) > level)
                            .count();
                    }
                });
            });
            profile.identify += t.elapsed();
            // Merge per-shard cohorts back to ascending global ids — the
            // within-level order of the monolithic frontier scan.
            let mut newly: Vec<u32> = Vec::new();
            let (mut new_hits, mut deferred) = (0usize, 0usize);
            for (s, lane) in lanes.iter().enumerate() {
                let b = bufs[s].lock();
                newly.extend(b.newly.iter().map(|&loc| lane.part.locals[loc as usize]));
                new_hits += b.new_hits;
                deferred += b.deferred;
            }
            newly.sort_unstable();
            level_trace.push(LevelTrace {
                level,
                frontier: frontier_total,
                identified: newly.len(),
            });
            if let Some(recs) = records.as_mut() {
                recs.push(TraceLevelRecord {
                    level: u32::from(level),
                    frontier: frontier_total,
                    identified: newly.len(),
                    new_hits,
                    activation_deferred: deferred,
                    expansions: 0, // filled in after this level's expansion
                    budget_remaining: tracker.remaining(),
                });
            }
            cohort.extend(newly.iter().map(|&v| (NodeId(v), level)));
            if cohort.len() >= params.top_k {
                break TerminationReason::EnoughCentralNodes;
            }
            if level >= max_level {
                break TerminationReason::LevelCap;
            }

            let charged_before = if records.is_some() {
                tracker.expansions()
            } else {
                0
            };
            let t = Instant::now();
            self.compute.install(|| {
                (0..shards).into_par_iter().for_each(|s| {
                    let lane = &lanes[s];
                    let b = &mut *bufs[s].lock();
                    let ctx = ExpandCtx {
                        graph: &lane.part.graph,
                        act: &lane.act,
                        state: lane.state,
                        budget: &tracker,
                    };
                    match backend {
                        ShardBackend::Seq | ShardBackend::DynPar(_) => {
                            for &f in &b.frontiers {
                                bottom_up::expand_frontier(&ctx, f, level);
                            }
                        }
                        ShardBackend::ParCpu(_) => {
                            b.frontiers
                                .par_iter()
                                .for_each(|&f| bottom_up::expand_frontier(&ctx, f, level));
                        }
                        ShardBackend::GpuStyle(_) => {
                            let frontiers = &b.frontiers;
                            (0..frontiers.len() * q).into_par_iter().for_each(|w| {
                                bottom_up::expand_work_item(&ctx, frontiers[w / q], w % q, level);
                            });
                        }
                    }
                    // Boundary scan: cells that became `level + 1` this
                    // round, whether written by local expansion into an
                    // owned node or into a halo replica.
                    b.outbox.clear();
                    for &bl in &lane.part.boundary {
                        for i in 0..q {
                            if lane.state.hit(bl, i) == level + 1 {
                                b.outbox.push((lane.part.locals[bl as usize], i as u32));
                            }
                        }
                    }
                });
            });
            // Exchange: dedup the union (the synchronous monotone-bound
            // prune) and broadcast each survivor to every replica still
            // reading ∞. Frontier flags are raised only on owners — the
            // only replicas whose flags are scanned.
            let mut pairs: Vec<(u32, u32)> = Vec::new();
            for b in bufs {
                pairs.extend_from_slice(&b.lock().outbox);
            }
            let sent = pairs.len();
            pairs.sort_unstable();
            pairs.dedup();
            self.counters.rounds.fetch_add(1, Ordering::Relaxed);
            self.counters.notifications.fetch_add(pairs.len() as u64, Ordering::Relaxed);
            self.counters
                .suppressed
                .fetch_add((sent - pairs.len()) as u64, Ordering::Relaxed);
            for &(v, i) in &pairs {
                for &s in &self.plan.holders[&v] {
                    let lane = &lanes[s as usize];
                    let l = lane.part.local_index[&v];
                    if lane.state.hit(l, i as usize) == INFINITE_LEVEL {
                        lane.state.set_hit(l, i as usize, level + 1);
                        if l < lane.part.num_owned {
                            lane.state.mark_frontier(l);
                        }
                    }
                }
            }
            profile.expansion += t.elapsed();
            if let Some(last) = records.as_mut().and_then(|r| r.last_mut()) {
                last.expansions = tracker.expansions() - charged_before;
                last.budget_remaining = tracker.remaining();
            }
            level += 1;
        };
        let last_level = level;

        // Top-down over the *global* graph, routing hitting levels to the
        // owning shard — byte-for-byte the monolithic stage.
        cohort.truncate(params.max_candidates);
        let global_act = match &explicit {
            Some(levels) => ActivationMap::Explicit(levels),
            None => ActivationMap::Computed { graph, config },
        };
        let hits = ShardedHitLevels {
            plan: &self.plan,
            states: lanes.iter().map(|l| l.state).collect(),
            q,
        };
        let t = Instant::now();
        let candidates: Option<Vec<CentralGraph>> = self.compute.install(|| {
            cohort
                .par_iter()
                .map(|&(c, d)| {
                    if tracker.should_stop() {
                        return None;
                    }
                    let e = top_down::extract(graph, &global_act, &hits, c.0, d);
                    Some(top_down::prune_and_score(graph, &hits, &e, params))
                })
                .collect()
        });
        let Some(candidates) = candidates else {
            return Err(tracker
                .error()
                .expect("a stopped top-down stage implies a tripped budget"));
        };
        let answers = top_down::select_top_k(candidates, params);
        profile.top_down = t.elapsed();

        let trace = records.take().map(|levels| {
            Box::new(QueryTrace {
                engine: self.name.clone(),
                keywords: q,
                total_expansions: tracker.expansions(),
                terminated: terminated == TerminationReason::LevelCap,
                levels,
                cache: None,
                session_id: None,
                session_queries: None,
                batch_id: None,
                co_batched: None,
                phase_ms: PhaseMillis::from(&profile),
                qid: None,
                cache_source_qid: None,
                shard_timelines: None,
            })
        });
        Ok(SearchOutcome {
            answers,
            profile,
            stats: SearchStats {
                last_level,
                central_candidates: cohort.len(),
                peak_frontier,
                trace: level_trace,
            },
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{KeywordSearchEngine, SeqEngine};
    use kgraph::GraphBuilder;
    use std::collections::HashSet;
    use textindex::InvertedIndex;

    /// A 12-node graph with two keyword clusters bridged by a hub.
    fn fixture() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let hub = b.add_node("hub", "junction");
        for i in 0..5 {
            let a = b.add_node(&format!("a{i}"), "alpha");
            b.add_edge(a, hub, "p");
        }
        for i in 0..5 {
            let z = b.add_node(&format!("z{i}"), "omega");
            b.add_edge(hub, z, if i % 2 == 0 { "p" } else { "q" });
        }
        let lone = b.add_node("lone", "isolated");
        let _ = lone;
        b.build()
    }

    #[test]
    fn every_node_is_owned_exactly_once() {
        let g = fixture();
        for shards in [1, 2, 3, 4, 8] {
            let plan = ShardPlan::build(&g, shards, DEFAULT_PARTITION_SEED);
            let mut seen = vec![0usize; g.num_nodes()];
            for part in &plan.parts {
                for &v in &part.locals[..part.num_owned as usize] {
                    seen[v as usize] += 1;
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "{shards} shards: ownership not a partition");
            // The owner table agrees with the parts.
            for (s, part) in plan.parts.iter().enumerate() {
                for &v in &part.locals[..part.num_owned as usize] {
                    assert_eq!(plan.owner[v as usize] as usize, s);
                }
            }
        }
    }

    #[test]
    fn id_maps_are_inverse_bijections() {
        let g = fixture();
        let plan = ShardPlan::build(&g, 3, DEFAULT_PARTITION_SEED);
        for part in &plan.parts {
            assert_eq!(part.local_index.len(), part.locals.len(), "local ids collide");
            for (l, &v) in part.locals.iter().enumerate() {
                assert_eq!(part.local_index[&v], l as u32, "maps disagree on node {v}");
                assert_eq!(
                    part.graph.node_key(NodeId(l as u32)),
                    g.node_key(NodeId(v)),
                    "local graph node order must follow `locals`"
                );
            }
            // Owned block first, each block in ascending global order.
            let (owned, halo) = part.locals.split_at(part.num_owned as usize);
            assert!(owned.windows(2).all(|w| w[0] < w[1]), "owned ids must ascend");
            assert!(halo.windows(2).all(|w| w[0] < w[1]), "halo ids must ascend");
        }
    }

    #[test]
    fn boundary_replicas_cover_the_edge_cut() {
        let g = fixture();
        let plan = ShardPlan::build(&g, 4, DEFAULT_PARTITION_SEED);
        for (s, l, d) in g.directed_edges() {
            let (os, od) = (plan.owner[s.index()], plan.owner[d.index()]);
            let _ = l;
            if os == od {
                continue;
            }
            // Each endpoint must be replicated into the other's shard and
            // listed in both boundary tables.
            for (node, shard) in [(s.0, od), (d.0, os)] {
                let part = &plan.parts[shard as usize];
                let local = *part
                    .local_index
                    .get(&node)
                    .unwrap_or_else(|| panic!("cut node {node} missing from shard {shard}"));
                assert!(local >= part.num_owned, "replica of {node} must be a halo");
                assert!(part.boundary.contains(&local), "halo {node} missing from boundary");
                let holders = &plan.holders[&node];
                assert!(holders.contains(&shard) && holders[0] == plan.owner[node as usize]);
            }
        }
        // Boundary tables contain exactly the replicated nodes.
        for part in &plan.parts {
            let from_boundary: HashSet<u32> =
                part.boundary.iter().map(|&l| part.locals[l as usize]).collect();
            let replicated: HashSet<u32> =
                part.locals.iter().copied().filter(|v| plan.holders.contains_key(v)).collect();
            assert_eq!(from_boundary, replicated);
        }
    }

    #[test]
    fn build_part_matches_the_full_plan() {
        let g = fixture();
        for shards in [1, 2, 3, 4, 8] {
            let plan = ShardPlan::build(&g, shards, DEFAULT_PARTITION_SEED);
            for s in 0..shards {
                let part = ShardPlan::build_part(&g, shards, DEFAULT_PARTITION_SEED, s);
                let full = &plan.parts[s];
                assert_eq!(part.locals, full.locals, "{shards} shards, part {s}");
                assert_eq!(part.num_owned, full.num_owned);
                assert_eq!(part.boundary, full.boundary);
                assert_eq!(part.local_index, full.local_index);
                assert_eq!(
                    part.graph.num_directed_edges(),
                    full.graph.num_directed_edges(),
                    "{shards} shards, part {s}: sub-graph differs"
                );
                for (l, &v) in part.locals.iter().enumerate() {
                    assert_eq!(
                        part.graph.weight(NodeId(l as u32)).to_bits(),
                        g.weight(NodeId(v)).to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn partitioning_is_deterministic_for_a_fixed_seed() {
        let g = fixture();
        let a = ShardPlan::build(&g, 3, 42);
        let b = ShardPlan::build(&g, 3, 42);
        assert_eq!(a.owner, b.owner);
        for (pa, pb) in a.parts.iter().zip(&b.parts) {
            assert_eq!(pa.locals, pb.locals);
            assert_eq!(pa.boundary, pb.boundary);
            assert_eq!(pa.graph.num_directed_edges(), pb.graph.num_directed_edges());
        }
        // A different seed is allowed to (and here does) move nodes.
        let c = ShardPlan::build(&g, 3, 43);
        assert_eq!(c.owner.len(), a.owner.len());
    }

    #[test]
    fn local_graphs_keep_global_weights() {
        let g = fixture();
        let plan = ShardPlan::build(&g, 3, DEFAULT_PARTITION_SEED);
        for part in &plan.parts {
            for (l, &v) in part.locals.iter().enumerate() {
                assert_eq!(
                    part.graph.weight(NodeId(l as u32)).to_bits(),
                    g.weight(NodeId(v)).to_bits(),
                    "node {v}: local weight re-normalized"
                );
                assert_eq!(
                    part.graph.raw_weight(NodeId(l as u32)).to_bits(),
                    g.raw_weight(NodeId(v)).to_bits()
                );
            }
        }
    }

    #[test]
    fn owned_nodes_have_complete_adjacency() {
        let g = fixture();
        let plan = ShardPlan::build(&g, 4, DEFAULT_PARTITION_SEED);
        for part in &plan.parts {
            for l in 0..part.num_owned {
                let v = part.locals[l as usize];
                let mut global: Vec<(u32, bool)> = g
                    .neighbors(NodeId(v))
                    .iter()
                    .map(|a| (a.target().0, a.is_outgoing()))
                    .collect();
                let mut local: Vec<(u32, bool)> = part
                    .graph
                    .neighbors(NodeId(l))
                    .iter()
                    .map(|a| (part.locals[a.target().index()], a.is_outgoing()))
                    .collect();
                global.sort_unstable();
                local.sort_unstable();
                assert_eq!(local, global, "owned node {v} lost adjacency");
            }
        }
    }

    #[test]
    fn more_shards_than_nodes_leaves_empty_parts() {
        let mut b = GraphBuilder::new();
        b.add_node("only", "alpha");
        let g = b.build();
        let plan = ShardPlan::build(&g, 8, DEFAULT_PARTITION_SEED);
        let owned_total: usize = plan.parts.iter().map(|p| p.num_owned as usize).sum();
        assert_eq!(owned_total, 1);
        assert!(plan.parts.iter().any(|p| p.num_owned == 0), "some parts must be empty");
        assert!(plan.holders.is_empty(), "an isolated node is never replicated");
    }

    #[test]
    fn empty_graph_partitions() {
        let g = GraphBuilder::new().build();
        let plan = ShardPlan::build(&g, 4, DEFAULT_PARTITION_SEED);
        assert!(plan.parts.iter().all(|p| p.locals.is_empty() && p.boundary.is_empty()));
    }

    /// Digest used by the in-crate equivalence checks: everything the
    /// workspace-level differential suite compares, minus the engine
    /// name.
    fn digest(out: &SearchOutcome) -> String {
        use std::fmt::Write as _;
        let mut s = format!(
            "stats:{}/{}/{}/{:?} ",
            out.stats.last_level,
            out.stats.central_candidates,
            out.stats.peak_frontier,
            out.stats.trace
        );
        for a in &out.answers {
            let _ = write!(
                s,
                "[c:{} d:{} n:{:?} e:{:?} kn:{:?} ke:{:?} s:{}]",
                a.central.0,
                a.depth,
                a.nodes,
                a.edges,
                a.keyword_nodes,
                a.keyword_edges,
                a.score.to_bits()
            );
        }
        s
    }

    #[test]
    fn sharded_search_matches_the_monolithic_engine() {
        let g = fixture();
        let idx = InvertedIndex::build(&g);
        let params = SearchParams::default().with_average_distance(1.0);
        for raw in ["alpha omega", "alpha junction", "omega", "alpha omega junction"] {
            let query = ParsedQuery::parse(&idx, raw);
            let mono = SeqEngine::new().search(&g, &query, &params);
            for shards in [1, 2, 3, 4, 8] {
                let sharded = ShardedSearch::new(&g, ShardBackend::Seq, shards);
                let out = sharded
                    .try_search(&g, &query, &params, &QueryBudget::unlimited())
                    .expect("unlimited budget");
                assert_eq!(digest(&out), digest(&mono), "query {raw:?}, {shards} shards");
            }
        }
    }

    #[test]
    fn traced_sharded_search_matches_including_levels() {
        let g = fixture();
        let idx = InvertedIndex::build(&g);
        let params = SearchParams::default()
            .with_average_distance(1.0)
            .with_trace(crate::trace::TraceLevel::Full);
        let query = ParsedQuery::parse(&idx, "alpha omega");
        let mono = SeqEngine::new().search(&g, &query, &params);
        let sharded = ShardedSearch::new(&g, ShardBackend::GpuStyle(2), 3);
        let out = sharded
            .try_search(&g, &query, &params, &QueryBudget::unlimited())
            .expect("unlimited budget");
        let (mt, st) = (mono.trace.unwrap(), out.trace.unwrap());
        assert_eq!(st.levels, mt.levels, "per-level records must match");
        assert_eq!(st.total_expansions, mt.total_expansions);
        assert_eq!(st.terminated, mt.terminated);
        assert_eq!(st.keywords, mt.keywords);
        assert_eq!(st.engine, "GPU-Par[shards=3]");
    }

    #[test]
    fn sessions_check_back_in_after_each_query() {
        let g = fixture();
        let idx = InvertedIndex::build(&g);
        let sharded = ShardedSearch::new(&g, ShardBackend::Seq, 4);
        let query = ParsedQuery::parse(&idx, "alpha omega");
        let params = SearchParams::default().with_average_distance(1.0);
        for _ in 0..3 {
            sharded.try_search(&g, &query, &params, &QueryBudget::unlimited()).unwrap();
        }
        let stats = sharded.stats();
        assert_eq!(stats.shards, 4);
        assert_eq!(stats.pools.sessions_created, 4, "one warm session per shard");
        assert_eq!(stats.pools.idle_sessions, 4);
        assert_eq!(stats.pools.in_flight, 0);
        assert_eq!(stats.pools.queries_run, 12, "3 queries × 4 shard sessions");
        assert!(stats.rounds > 0);
    }

    #[test]
    fn expired_deadline_fails_without_partial_answers() {
        let g = fixture();
        let idx = InvertedIndex::build(&g);
        let sharded = ShardedSearch::new(&g, ShardBackend::Seq, 2);
        let query = ParsedQuery::parse(&idx, "alpha omega");
        let err = sharded
            .try_search(
                &g,
                &query,
                &SearchParams::default(),
                &QueryBudget::unlimited().with_timeout(std::time::Duration::ZERO),
            )
            .unwrap_err();
        assert_eq!(err.kind(), "deadline_exceeded");
        // The sessions were checked back in cleanly (no quarantine).
        assert_eq!(sharded.stats().pools.quarantined, 0);
        assert_eq!(sharded.stats().pools.in_flight, 0);
    }
}
