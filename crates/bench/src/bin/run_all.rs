//! Runs every experiment of the paper's evaluation section in sequence.
use wikisearch_bench::experiments as exp;

fn main() {
    exp::table2_datasets::run();
    exp::fig3_activation::run();
    exp::table4_storage::run();
    exp::exp1_knum::run();
    exp::exp2_topk::run();
    exp::exp3_alpha::run();
    exp::exp4_threads::run();
    exp::throughput::run();
    exp::cache_hit_rate::run();
    exp::cold_start::run();
    exp::effectiveness::run();
    // Appendix experiments (the paper's excluded-competitor arguments).
    exp::blinks_cost::run();
    exp::rclique_sensitivity::run();
    exp::gpu_projection::run();
    println!("All experiments complete. JSON records in target/experiments/.");
}
