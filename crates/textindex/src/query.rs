//! Query parsing: a raw keyword string → keyword groups with their `T_i`
//! node sets, ready to seed the per-keyword BFS instances (paper Sec. III).

use crate::analyzer::analyze_unique;
use crate::inverted::InvertedIndex;
use kgraph::NodeId;
use serde::{Deserialize, Serialize};

/// One query keyword and its matched node set `T_i`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct KeywordGroup {
    /// Analyzed (stemmed) form of the keyword — the BFS instance identity.
    pub term: String,
    /// The node set `T_i` containing the keyword, sorted by node id.
    pub nodes: Vec<NodeId>,
}

/// A parsed keyword query `Q = {t_0, …, t_{q−1}}`.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ParsedQuery {
    /// Groups with at least one matching node, in query order.
    pub groups: Vec<KeywordGroup>,
    /// Analyzed terms that matched no node (reported to the user; a term
    /// with an empty `T_i` can never be covered, so it is excluded from
    /// search rather than guaranteeing zero answers).
    pub unmatched: Vec<String>,
}

impl ParsedQuery {
    /// Parse `raw` against `idx`. Duplicate keywords (after stemming)
    /// collapse into one group, matching the paper's set semantics.
    pub fn parse(idx: &InvertedIndex, raw: &str) -> Self {
        let mut q = ParsedQuery::default();
        for term in analyze_unique(raw) {
            match idx.lookup_analyzed(&term) {
                Some(nodes) if !nodes.is_empty() => {
                    q.groups.push(KeywordGroup { term, nodes: nodes.to_vec() })
                }
                _ => q.unmatched.push(term),
            }
        }
        q
    }

    /// Number of searchable keywords `q`.
    pub fn num_keywords(&self) -> usize {
        self.groups.len()
    }

    /// `true` if no keyword matched any node.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Average keyword frequency of the matched groups — the `kwf`
    /// statistic of the paper's Table V.
    pub fn avg_keyword_frequency(&self) -> f64 {
        if self.groups.is_empty() {
            return 0.0;
        }
        self.groups.iter().map(|g| g.nodes.len()).sum::<usize>() as f64 / self.groups.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::GraphBuilder;

    fn index() -> InvertedIndex {
        let mut b = GraphBuilder::new();
        b.add_node("Q1", "XML relational search");
        b.add_node("Q2", "relational databases");
        b.add_node("Q3", "search engine");
        InvertedIndex::build(&b.build())
    }

    #[test]
    fn parse_builds_groups_in_query_order() {
        let idx = index();
        let q = ParsedQuery::parse(&idx, "XML relational search");
        assert_eq!(q.num_keywords(), 3);
        assert_eq!(q.groups[0].term, "xml");
        assert_eq!(q.groups[0].nodes.len(), 1);
        assert_eq!(q.groups[1].term, "relat"); // stemmed
        assert_eq!(q.groups[1].nodes.len(), 2);
        assert!(q.unmatched.is_empty());
    }

    #[test]
    fn unmatched_terms_are_reported_not_fatal() {
        let idx = index();
        let q = ParsedQuery::parse(&idx, "XML quantum");
        assert_eq!(q.num_keywords(), 1);
        assert_eq!(q.unmatched, vec!["quantum"]);
    }

    #[test]
    fn duplicate_keywords_collapse() {
        let idx = index();
        let q = ParsedQuery::parse(&idx, "search searching searches");
        assert_eq!(q.num_keywords(), 1);
    }

    #[test]
    fn stopwords_vanish_and_empty_query_is_empty() {
        let idx = index();
        assert!(ParsedQuery::parse(&idx, "the of and").is_empty());
        assert!(ParsedQuery::parse(&idx, "").is_empty());
    }

    #[test]
    fn kwf_matches_group_sizes() {
        let idx = index();
        let q = ParsedQuery::parse(&idx, "XML relational");
        assert!((q.avg_keyword_frequency() - 1.5).abs() < 1e-9);
        assert_eq!(ParsedQuery::default().avg_keyword_frequency(), 0.0);
    }
}
