//! CPU-Par: the paper's multi-core CPU engine (Sec. V-B).
//!
//! Scheduling choices mirror the paper's OpenMP implementation:
//!
//! * **Expansion** uses *coarse-grained* parallelism — one task per
//!   frontier, dynamically scheduled (rayon work stealing ≈ OpenMP
//!   `schedule(dynamic)`): "we simply let threads on CPU handle different
//!   frontiers with a dynamic scheduling".
//! * **Frontier enqueue** is *sequential*: the paper found that on CPU
//!   "locked writing is so expensive and the fastest way is to enqueue
//!   frontiers in a sequential manner".
//! * **Identification** is parallel over frontiers (each frontier is
//!   touched by exactly one task, so the central flag needs no lock).
//! * **Top-down** is parallel over central nodes, one task per Central
//!   Graph, dynamically scheduled (Sec. V-C).

use crate::bottom_up::{enqueue_sequential, expand_frontier, ExecStrategy, ExpandCtx};
use crate::budget::QueryBudget;
use crate::engine::{build_pool, run_matrix_search, KeywordSearchEngine, SearchOutcome};
use crate::error::SearchError;
use crate::session::SearchSession;
use crate::state::SearchState;
use crate::SearchParams;
use kgraph::KnowledgeGraph;
use rayon::prelude::*;
use textindex::ParsedQuery;

/// Lock-free multi-core engine (the paper's **CPU-Par**).
pub struct ParCpuEngine {
    pool: rayon::ThreadPool,
    threads: usize,
}

struct ParCpuStrategy<'p> {
    pool: &'p rayon::ThreadPool,
}

impl ExecStrategy for ParCpuStrategy<'_> {
    fn enqueue(&self, state: &SearchState, out: &mut Vec<u32>) {
        enqueue_sequential(state, out);
    }

    fn identify(&self, state: &SearchState, frontiers: &[u32], level: u8, newly: &mut Vec<u32>) {
        newly.clear();
        let mut found: Vec<u32> = self.pool.install(|| {
            frontiers
                .par_iter()
                .copied()
                .filter(|&f| {
                    if !state.is_central(f) && state.row_complete(f) {
                        state.mark_central(f, level);
                        true
                    } else {
                        false
                    }
                })
                .collect()
        });
        found.sort_unstable(); // deterministic identification order
        newly.extend(found);
    }

    fn expand(&self, ctx: &ExpandCtx<'_>, frontiers: &[u32], level: u8) {
        self.pool.install(|| {
            frontiers.par_iter().for_each(|&f| expand_frontier(ctx, f, level));
        });
    }
}

impl ParCpuEngine {
    /// Engine with `threads` workers (`Tnum` in the paper's Exp-4).
    pub fn new(threads: usize) -> Self {
        ParCpuEngine { pool: build_pool(threads), threads: threads.max(1) }
    }

    /// Configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl KeywordSearchEngine for ParCpuEngine {
    fn name(&self) -> &'static str {
        "CPU-Par"
    }

    fn try_search_session(
        &self,
        session: &mut SearchSession,
        graph: &KnowledgeGraph,
        query: &ParsedQuery,
        params: &SearchParams,
        budget: &QueryBudget,
    ) -> Result<SearchOutcome, SearchError> {
        let strategy = ParCpuStrategy { pool: &self.pool };
        run_matrix_search(
            &strategy,
            self.name(),
            Some(&self.pool),
            session,
            graph,
            query,
            params,
            budget,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::GraphBuilder;
    use textindex::InvertedIndex;

    #[test]
    fn matches_sequential_on_a_grid() {
        // 6×6 grid with keywords at opposite corners plus a middle strip.
        let mut b = GraphBuilder::new();
        let mut ids = vec![];
        for r in 0..6 {
            for c in 0..6 {
                let text = match (r, c) {
                    (0, 0) => "alpha start",
                    (5, 5) => "omega end",
                    (2, _) => "middle strip",
                    _ => "plain",
                };
                ids.push(b.add_node(&format!("n{r}_{c}"), text));
            }
        }
        for r in 0..6 {
            for c in 0..6 {
                if c + 1 < 6 {
                    b.add_edge(ids[r * 6 + c], ids[r * 6 + c + 1], "h");
                }
                if r + 1 < 6 {
                    b.add_edge(ids[r * 6 + c], ids[(r + 1) * 6 + c], "v");
                }
            }
        }
        let g = b.build();
        let idx = InvertedIndex::build(&g);
        let q = ParsedQuery::parse(&idx, "alpha omega middle");
        let params = SearchParams::default().with_average_distance(4.0);
        let seq = crate::engine::SeqEngine::new().search(&g, &q, &params);
        let par = ParCpuEngine::new(4).search(&g, &q, &params);
        assert_eq!(seq.answers.len(), par.answers.len());
        for (a, b) in seq.answers.iter().zip(&par.answers) {
            assert_eq!(a.central, b.central);
            assert_eq!(a.nodes, b.nodes);
            assert_eq!(a.edges, b.edges);
        }
        assert_eq!(seq.stats.central_candidates, par.stats.central_candidates);
        assert_eq!(seq.stats.last_level, par.stats.last_level);
    }

    #[test]
    fn thread_count_is_respected() {
        let e = ParCpuEngine::new(3);
        assert_eq!(e.threads(), 3);
        assert_eq!(ParCpuEngine::new(0).threads(), 1);
    }
}
