//! Regenerates the paper's Fig. 8 row 2 (Exp-3).
fn main() {
    wikisearch_bench::experiments::exp3_alpha::run();
}
