//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde shim. No `syn`/`quote`: the struct item is parsed
//! directly from the token stream and the impl is emitted as source text.
//!
//! Supported shapes (everything this workspace derives on):
//! - named-field structs, with `#[serde(skip)]` on fields
//! - tuple structs (newtypes serialize transparently, wider ones as arrays)
//! - unit structs
//!
//! Enums, generics, and other serde attributes are rejected loudly.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
}

enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Input {
    name: String,
    shape: Shape,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    let body = match &item.shape {
        Shape::Named(fields) => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "fields.push((\"{0}\".to_string(), serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            format!(
                "let mut fields: Vec<(String, serde::Value)> = Vec::new();\n\
                 {pushes}serde::Value::Object(fields)"
            )
        }
        Shape::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("serde::Serialize::to_value(&self.{i})")).collect();
            format!("serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Unit => "serde::Value::Null".to_string(),
    };
    let code = format!(
        "impl serde::Serialize for {} {{\n\
             fn to_value(&self) -> serde::Value {{\n{body}\n}}\n\
         }}\n",
        item.name
    );
    code.parse().expect("derived Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    let body = match &item.shape {
        Shape::Named(fields) => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!("{}: Default::default(),\n", f.name));
                } else {
                    inits.push_str(&format!(
                        "{0}: serde::Deserialize::from_value(\
                             v.get_field(\"{0}\").unwrap_or(&serde::Value::Null))?,\n",
                        f.name
                    ));
                }
            }
            format!(
                "if v.as_object().is_none() {{ return Err(v.type_error(\"object\")); }}\n\
                 Ok(Self {{\n{inits}}})"
            )
        }
        Shape::Tuple(1) => "Ok(Self(serde::Deserialize::from_value(v)?))".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = v.as_array().ok_or_else(|| v.type_error(\"array\"))?;\n\
                 if items.len() != {n} {{\n\
                     return Err(serde::DeError(format!(\
                         \"expected array of length {n}, got {{}}\", items.len())));\n\
                 }}\n\
                 Ok(Self({}))",
                items.join(", ")
            )
        }
        Shape::Unit => "Ok(Self)".to_string(),
    };
    let code = format!(
        "impl serde::Deserialize for {} {{\n\
             fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{\n{body}\n}}\n\
         }}\n",
        item.name
    );
    code.parse().expect("derived Deserialize impl must parse")
}

// ---------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------

fn parse(input: TokenStream) -> Input {
    let mut tokens = input.into_iter().peekable();

    // Item-level attributes (doc comments, #[derive], ...), then visibility.
    skip_attributes(&mut tokens);
    skip_visibility(&mut tokens);

    match tokens.next() {
        Some(TokenTree::Ident(kw)) if kw.to_string() == "struct" => {}
        other => panic!("serde shim derive supports structs only, found {other:?}"),
    }
    let name = match tokens.next() {
        Some(TokenTree::Ident(name)) => name.to_string(),
        other => panic!("expected struct name, found {other:?}"),
    };

    match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Input { name, shape: Shape::Named(parse_named_fields(g.stream())) }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Input { name, shape: Shape::Tuple(count_tuple_fields(g.stream())) }
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Input { name, shape: Shape::Unit },
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde shim derive does not support generic struct `{name}`")
        }
        other => panic!("unexpected tokens after struct name: {other:?}"),
    }
}

type Tokens = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Consume leading `#[...]` attributes; return whether any was `#[serde(skip)]`.
fn skip_attributes(tokens: &mut Tokens) -> bool {
    let mut skip = false;
    while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        tokens.next();
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                skip |= attr_is_serde_skip(g.stream());
            }
            other => panic!("malformed attribute: {other:?}"),
        }
    }
    skip
}

fn attr_is_serde_skip(attr: TokenStream) -> bool {
    let mut tokens = attr.into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match tokens.next() {
        Some(TokenTree::Group(args)) => args
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "skip")),
        _ => false,
    }
}

/// Consume `pub`, `pub(crate)`, `pub(in ...)` if present.
fn skip_visibility(tokens: &mut Tokens) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        tokens.next();
        if matches!(
            tokens.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            tokens.next();
        }
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let mut tokens = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        if tokens.peek().is_none() {
            return fields;
        }
        let skip = skip_attributes(&mut tokens);
        skip_visibility(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(name)) => name.to_string(),
            other => panic!("expected field name, found {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        fields.push(Field { name, skip });
        consume_type(&mut tokens);
    }
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut tokens = body.into_iter().peekable();
    let mut count = 0;
    loop {
        if tokens.peek().is_none() {
            return count;
        }
        skip_attributes(&mut tokens);
        skip_visibility(&mut tokens);
        count += 1;
        consume_type(&mut tokens);
    }
}

/// Consume one type, up to and including the next comma at angle-depth 0.
/// Commas inside `<...>` (e.g. `HashMap<String, u32>`) belong to the type;
/// commas inside `(...)`/`[...]` arrive pre-grouped and need no tracking.
fn consume_type(tokens: &mut Tokens) {
    let mut angle_depth = 0usize;
    for token in tokens.by_ref() {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
    }
}
