//! # wikisearch-cli — command-line interface to the WikiSearch engine
//!
//! ```text
//! wikisearch generate --dataset tiny --out kb.tsv [--entities N] [--seed S]
//! wikisearch stats    --graph kb.tsv [--pairs N]
//! wikisearch search   --graph kb.tsv --query "xml rdf sql"
//!                     [--top-k K] [--alpha A] [--backend seq|cpu|gpu|dyn]
//!                     [--threads T] [--json true]
//! wikisearch convert  --in kb.tsv --out kb.bin
//! wikisearch serve    --graph kb.tsv [--port P] [--backend …]
//!                     [--workers W] [--max-requests N]
//!                     [--shard-workers N | --shard-addr a,b,…]
//!                     [--degraded-answers true] [--rpc-timeout-ms MS]
//!                     [--rpc-retries N] [--heartbeat-ms MS]
//! wikisearch shard-worker --graph kb.tsv --shards N --shard-index I
//!                     [--port P] [--watch-stdin true]
//! wikisearch help
//! ```
//!
//! Graph files are read/written by extension: `.tsv` (the line format of
//! `kgraph::io`) or `.bin` (the compact format of `kgraph::binio`).

#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod serve;
pub mod supervisor;
pub mod worker;

use args::parse;

/// Entry point shared by the binary and the tests: run the CLI against
/// `argv` (without program name), writing to `out`. Returns the process
/// exit code.
pub fn run(argv: &[String], out: &mut dyn std::io::Write) -> i32 {
    let parsed = match parse(argv) {
        Ok(p) => p,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            return 2;
        }
    };
    let result = match parsed.command.as_str() {
        "generate" => commands::generate(&parsed, out),
        "stats" => commands::stats(&parsed, out),
        "search" => commands::search(&parsed, out),
        "convert" => commands::convert(&parsed, out),
        "build-snapshot" => commands::build_snapshot(&parsed, out),
        "serve" => serve::serve(&parsed, out),
        "shard-worker" => worker::shard_worker(&parsed, out),
        "help" | "--help" | "-h" => {
            let _ = writeln!(out, "{}", commands::HELP);
            Ok(())
        }
        other => Err(format!("unknown command {other:?}; try `wikisearch help`")),
    };
    match result {
        Ok(()) => 0,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            1
        }
    }
}
