//! Regenerates the paper's Table IV.
fn main() {
    wikisearch_bench::experiments::table4_storage::run();
}
