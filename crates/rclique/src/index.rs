//! The neighbor index: for every node, all nodes within hop distance `R`.
//!
//! This is the r-clique method's substitute for an all-pairs distance
//! matrix. Its size is the sum of `R`-ball volumes — on hub-heavy KBs the
//! balls explode after a few hops, which is the parameter trap the
//! reproduced paper points out.

use kgraph::{KnowledgeGraph, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Per-node bounded-radius distance lists.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NeighborIndex {
    /// Index radius `R` (hops).
    radius: u16,
    /// Per node: `(neighbor, distance)` pairs with `0 < distance ≤ R`,
    /// sorted by node id for binary-search lookups.
    lists: Vec<Vec<(NodeId, u16)>>,
    /// Wall-clock build time (for the sensitivity harness).
    #[serde(skip)]
    pub build_time: std::time::Duration,
}

impl NeighborIndex {
    /// Build by one bounded BFS per node — `O(|V| · ball(R))`.
    pub fn build(graph: &KnowledgeGraph, radius: u16) -> Self {
        let start = std::time::Instant::now();
        let n = graph.num_nodes();
        let mut lists = Vec::with_capacity(n);
        let mut dist = vec![u16::MAX; n];
        let mut touched: Vec<usize> = Vec::new();
        let mut queue: VecDeque<NodeId> = VecDeque::new();
        for v in graph.nodes() {
            queue.clear();
            touched.clear();
            dist[v.index()] = 0;
            touched.push(v.index());
            queue.push_back(v);
            let mut list: Vec<(NodeId, u16)> = Vec::new();
            while let Some(u) = queue.pop_front() {
                let d = dist[u.index()];
                if d >= radius {
                    continue;
                }
                for adj in graph.neighbors(u) {
                    let t = adj.target();
                    if dist[t.index()] == u16::MAX {
                        dist[t.index()] = d + 1;
                        touched.push(t.index());
                        list.push((t, d + 1));
                        queue.push_back(t);
                    }
                }
            }
            list.sort_unstable_by_key(|&(t, _)| t);
            lists.push(list);
            for &i in &touched {
                dist[i] = u16::MAX;
            }
        }
        NeighborIndex { radius, lists, build_time: start.elapsed() }
    }

    /// The index radius `R`.
    pub fn radius(&self) -> u16 {
        self.radius
    }

    /// Distance between `a` and `b` if it is `≤ R` (0 when `a == b`).
    pub fn distance(&self, a: NodeId, b: NodeId) -> Option<u16> {
        if a == b {
            return Some(0);
        }
        self.lists[a.index()]
            .binary_search_by_key(&b, |&(t, _)| t)
            .ok()
            .map(|i| self.lists[a.index()][i].1)
    }

    /// All nodes within `R` of `v`, with distances.
    pub fn ball(&self, v: NodeId) -> &[(NodeId, u16)] {
        &self.lists[v.index()]
    }

    /// Total index entries (the storage-blowup measure).
    pub fn total_entries(&self) -> usize {
        self.lists.iter().map(Vec::len).sum()
    }

    /// Approximate bytes.
    pub fn approx_bytes(&self) -> usize {
        self.total_entries() * (std::mem::size_of::<NodeId>() + 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::GraphBuilder;

    fn path(n: usize) -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let ids: Vec<_> = (0..n).map(|i| b.add_node(&format!("n{i}"), "x")).collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1], "e");
        }
        b.build()
    }

    #[test]
    fn distances_are_exact_within_radius() {
        let g = path(8);
        let idx = NeighborIndex::build(&g, 3);
        let a = NodeId(0);
        assert_eq!(idx.distance(a, NodeId(0)), Some(0));
        assert_eq!(idx.distance(a, NodeId(1)), Some(1));
        assert_eq!(idx.distance(a, NodeId(3)), Some(3));
        assert_eq!(idx.distance(a, NodeId(4)), None, "beyond R");
        // symmetry on the bi-directed view
        assert_eq!(idx.distance(NodeId(4), a), None);
        assert_eq!(idx.distance(NodeId(3), a), Some(3));
    }

    #[test]
    fn ball_sizes_grow_with_radius() {
        let g = path(20);
        let small = NeighborIndex::build(&g, 1);
        let large = NeighborIndex::build(&g, 5);
        assert!(large.total_entries() > small.total_entries());
        assert!(large.approx_bytes() > small.approx_bytes());
        assert_eq!(small.radius(), 1);
    }

    #[test]
    fn hub_graphs_blow_up_the_index() {
        // A star: radius 2 covers everything from every node.
        let mut b = GraphBuilder::new();
        let hub = b.add_node("h", "hub");
        for i in 0..100 {
            let v = b.add_node(&format!("s{i}"), "leaf");
            b.add_edge(v, hub, "e");
        }
        let g = b.build();
        let idx = NeighborIndex::build(&g, 2);
        // every node sees all 100 others
        assert_eq!(idx.total_entries(), 101 * 100);
        let _ = hub;
    }
}
