//! End-to-end observability over a live server: the `STATS` document's
//! exact key set (a snapshot-style contract test — every documented
//! field present, nothing undocumented sneaks in), the `EXPLAIN` verb's
//! per-level trace, and the `METRICS` verb's Prometheus text exposition
//! checked against a hand-rolled line grammar.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::OnceLock;
use std::time::Duration;

/// One shared server for the whole suite; the thread is leaked and dies
/// with the test process.
fn server_port() -> u16 {
    static PORT: OnceLock<u16> = OnceLock::new();
    *PORT.get_or_init(|| {
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let port = probe.local_addr().unwrap().port();
        drop(probe);

        let path = std::env::temp_dir()
            .join(format!("ws-observability-{}.tsv", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let mut b = kgraph::GraphBuilder::new();
        let x = b.add_node("x", "xml");
        let q = b.add_node("q", "query language");
        let s = b.add_node("s", "sql");
        let r = b.add_node("r", "rdf");
        b.add_edge(x, q, "rel");
        b.add_edge(s, q, "rel");
        b.add_edge(r, q, "rel");
        std::fs::write(&path, kgraph::io::to_tsv(&b.build())).unwrap();

        std::thread::spawn(move || {
            let argv: Vec<String> =
                format!("serve --graph {path} --port {port} --backend seq --workers 2")
                    .split_whitespace()
                    .map(String::from)
                    .collect();
            let args = wikisearch_cli::args::parse(&argv).unwrap();
            let mut out = Vec::new();
            let _ = wikisearch_cli::serve::serve(&args, &mut out);
        });
        for _ in 0..150 {
            if TcpStream::connect(("127.0.0.1", port)).is_ok() {
                return port;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        panic!("observability server never came up on port {port}");
    })
}

fn connect() -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(("127.0.0.1", server_port())).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

fn request_line(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
    writeln!(stream, "{line}").unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    response
}

#[test]
fn stats_document_has_exactly_the_documented_key_set() {
    let (mut stream, mut reader) = connect();
    // At least one query first, so the histograms are non-degenerate.
    let answer = request_line(&mut stream, &mut reader, "QUERY xml sql");
    assert!(answer.contains("answers"), "{answer}");

    let response = request_line(&mut stream, &mut reader, "STATS");
    let doc: serde_json::Value = serde_json::from_str(&response).unwrap();
    let keys: Vec<&str> = doc.as_object().unwrap().iter().map(|(k, _)| k.as_str()).collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    // The snapshot contract: exactly these top-level fields, all
    // documented in the README's STATS table. A new field must be added
    // there and here together.
    assert_eq!(
        sorted,
        vec![
            "batch",
            "budget_exhausted",
            "cache",
            "engine",
            "expansions",
            "latency",
            "memory_mapped",
            "oversized",
            "panics",
            "pool",
            "remote",
            "served",
            "shard_unavailable",
            "shards",
            "shed",
            "slow_queries",
            "telemetry",
            "timeouts",
        ],
        "{response}"
    );
    // This server runs unsharded: the key is present but null, like a
    // disabled cache. Batching is off by default, so its block is null
    // too, and so is the remote-worker block.
    assert!(doc["shards"].is_null(), "{response}");
    assert!(doc["batch"].is_null(), "{response}");
    assert!(doc["remote"].is_null(), "{response}");

    // The nested metrics blocks carry their full documented key sets too.
    let block_keys = |v: &serde_json::Value| -> Vec<String> {
        let mut ks: Vec<String> = v.as_object().unwrap().iter().map(|(k, _)| k.clone()).collect();
        ks.sort_unstable();
        ks
    };
    assert_eq!(
        block_keys(&doc["engine"]),
        vec![
            "budget_exhausted",
            "cache_hits",
            "cache_misses",
            "deadline_exceeded",
            "queries",
            "shard_unavailable"
        ]
    );
    assert_eq!(
        block_keys(&doc["latency"]),
        vec!["count", "mean_ms", "p50_ms", "p95_ms", "p99_ms"]
    );
    assert_eq!(block_keys(&doc["expansions"]), vec!["count", "mean", "p50", "p95", "p99"]);
    assert_eq!(
        block_keys(&doc["telemetry"]),
        vec![
            "capacity",
            "in_flight",
            "interval_ms",
            "qids_issued",
            "samples",
            "slowest_recent"
        ]
    );
    // This server runs the default sampler cadence, and the query above
    // was tagged with a fleet-wide qid and entered the recent-query ring.
    assert_eq!(doc["telemetry"]["interval_ms"], 1000u64, "{response}");
    assert!(doc["telemetry"]["qids_issued"].as_u64().unwrap() >= 1, "{response}");
    assert_eq!(doc["telemetry"]["in_flight"], 0u64, "{response}");
    assert!(doc["telemetry"]["slowest_recent"]["qid"].as_u64().unwrap() >= 1, "{response}");

    // Sanity on the values: the query above was observed.
    assert!(doc["engine"]["queries"].as_u64().unwrap() >= 1, "{response}");
    assert!(doc["latency"]["count"].as_u64().unwrap() >= 1, "{response}");
    let p50 = doc["latency"]["p50_ms"].as_f64().unwrap();
    let p99 = doc["latency"]["p99_ms"].as_f64().unwrap();
    assert!(p50 > 0.0 && p99 >= p50, "{response}");
    writeln!(stream, "QUIT").unwrap();
}

#[test]
fn explain_returns_the_per_level_trace_over_the_wire() {
    let (mut stream, mut reader) = connect();
    let response = request_line(&mut stream, &mut reader, "EXPLAIN xml sql rdf");
    let doc: serde_json::Value = serde_json::from_str(&response).unwrap();
    assert_eq!(doc["answers"][0]["central"], "query language", "{response}");
    assert_eq!(doc["trace"]["engine"], "Seq", "{response}");
    assert_eq!(doc["trace"]["keywords"], 3u64, "{response}");
    let levels = doc["trace"]["levels"].as_array().unwrap();
    assert!(!levels.is_empty(), "{response}");
    for (i, level) in levels.iter().enumerate() {
        assert_eq!(level["level"].as_u64().unwrap(), i as u64, "{response}");
        assert!(level["frontier"].as_u64().is_some(), "{response}");
        assert!(level["new_hits"].as_u64().is_some(), "{response}");
    }
    // EXPLAIN with no keywords is an error, like QUERY.
    let response = request_line(&mut stream, &mut reader, "EXPLAIN");
    let doc: serde_json::Value = serde_json::from_str(&response).unwrap();
    assert_eq!(doc["error"], "empty query", "{response}");
    writeln!(stream, "QUIT").unwrap();
}

#[test]
fn metrics_verb_emits_valid_prometheus_exposition() {
    let (mut stream, mut reader) = connect();
    // Give the histograms something to chew on.
    for _ in 0..3 {
        let answer = request_line(&mut stream, &mut reader, "QUERY xml sql");
        assert!(answer.contains("answers"), "{answer}");
    }
    writeln!(stream, "METRICS").unwrap();
    let mut lines: Vec<String> = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end().to_string();
        if line == "# EOF" {
            break;
        }
        lines.push(line);
    }
    assert_prometheus_grammar(&lines);

    // The required series families are all present.
    let text = lines.join("\n");
    for series in [
        "ws_queries_total",
        "ws_cache_hits_total",
        "ws_cache_misses_total",
        "ws_deadline_exceeded_total",
        "ws_budget_exhausted_total",
        "ws_latency_seconds_bucket",
        "ws_latency_seconds_sum",
        "ws_latency_seconds_count",
        "ws_expansions_bucket",
        "ws_pool_queries_total",
        "ws_pool_idle_sessions",
        "ws_cache_entries",
        "ws_shard_unavailable_total",
        "ws_server_served_total",
        "ws_server_slow_queries_total",
        "ws_server_shard_unavailable_total",
        "ws_build_info",
        "ws_uptime_seconds",
        "ws_telemetry_interval_ms",
        "ws_telemetry_samples_total",
        "ws_telemetry_ring_capacity",
        "ws_telemetry_in_flight",
        "ws_telemetry_query_ids_total",
    ] {
        assert!(text.contains(series), "missing series {series}:\n{text}");
    }
    // Batching is off on this server, so its series are absent entirely
    // (mirrors the null STATS block) — likewise the remote-worker series.
    assert!(!text.contains("ws_batch_"), "unexpected batch series:\n{text}");
    assert!(!text.contains("ws_remote_"), "unexpected remote series:\n{text}");
    // The connection still serves requests after the multi-line response.
    let response = request_line(&mut stream, &mut reader, "PING");
    assert_eq!(response.trim(), "PONG");
    writeln!(stream, "QUIT").unwrap();
}

#[test]
fn query_and_explain_responses_carry_monotonic_query_ids() {
    let (mut stream, mut reader) = connect();
    let answer = request_line(&mut stream, &mut reader, "QUERY xml sql");
    let doc: serde_json::Value = serde_json::from_str(&answer).unwrap();
    let qid = doc["qid"].as_u64().unwrap_or_else(|| panic!("no qid in {answer}"));
    assert!(qid >= 1, "{answer}");
    // EXPLAIN draws from the same fleet-wide generator, and its trace is
    // tagged with the same id the response document carries.
    let explained = request_line(&mut stream, &mut reader, "EXPLAIN xml sql");
    let doc: serde_json::Value = serde_json::from_str(&explained).unwrap();
    let explain_qid = doc["qid"].as_u64().unwrap_or_else(|| panic!("no qid in {explained}"));
    assert!(explain_qid > qid, "ids must be monotonic: {qid} then {explained}");
    assert_eq!(doc["trace"]["qid"], explain_qid, "{explained}");
    writeln!(stream, "QUIT").unwrap();
}

#[test]
fn top_verb_summarizes_the_live_server_on_one_line() {
    let (mut stream, mut reader) = connect();
    let answer = request_line(&mut stream, &mut reader, "QUERY xml sql rdf");
    assert!(answer.contains("answers"), "{answer}");

    let response = request_line(&mut stream, &mut reader, "TOP");
    let doc: serde_json::Value = serde_json::from_str(&response).unwrap();
    let mut keys: Vec<&str> = doc.as_object().unwrap().iter().map(|(k, _)| k.as_str()).collect();
    keys.sort_unstable();
    assert_eq!(
        keys,
        vec![
            "breakers",
            "cache_hit_rate",
            "in_flight",
            "qids_issued",
            "qps",
            "samples",
            "served",
            "slowest_recent"
        ],
        "{response}"
    );
    assert_eq!(doc["in_flight"], 0u64, "{response}");
    assert!(doc["served"].as_u64().unwrap() >= 1, "{response}");
    assert!(doc["qids_issued"].as_u64().unwrap() >= 1, "{response}");
    // The query above entered the recent ring, so the slowest-recent
    // pointer names a real qid with a real wall time.
    assert!(doc["slowest_recent"]["qid"].as_u64().unwrap() >= 1, "{response}");
    assert!(doc["slowest_recent"]["wall_ms"].as_f64().unwrap() >= 0.0, "{response}");
    // This server is not remote, so there are no breakers to report.
    assert!(doc["breakers"].is_null(), "{response}");
    // TOP is case-insensitive like the other bare verbs.
    let response = request_line(&mut stream, &mut reader, "top");
    assert!(response.contains("qids_issued"), "{response}");
    writeln!(stream, "QUIT").unwrap();
}

#[test]
fn stats_window_grammar_is_enforced_over_the_wire() {
    let (mut stream, mut reader) = connect();
    for bad in ["STATS WINDOW", "STATS WINDOW 0", "STATS WINDOW five", "STATS WINDOWS 5"] {
        let response = request_line(&mut stream, &mut reader, bad);
        let doc: serde_json::Value = serde_json::from_str(&response).unwrap();
        assert!(doc["error"].as_str().is_some(), "{bad:?} must be rejected: {response}");
    }
    // A well-formed window request answers either the windowed document
    // or the structured "window unavailable" refusal — never a grammar
    // error — depending on whether the sampler has two samples yet.
    let response = request_line(&mut stream, &mut reader, "STATS WINDOW 5");
    let doc: serde_json::Value = serde_json::from_str(&response).unwrap();
    if doc.get("error").is_some() {
        assert_eq!(doc["error"], "window unavailable", "{response}");
    } else {
        assert_eq!(doc["window_s"], 5u64, "{response}");
    }
    writeln!(stream, "QUIT").unwrap();
}

#[test]
fn stats_window_reports_recent_rates_not_lifetime_totals() {
    // A dedicated server with a fast sampler: load in the distant past
    // (more than one window ago) must age out of `STATS WINDOW 1` while
    // cumulative STATS keeps counting it forever.
    let probe = TcpListener::bind("127.0.0.1:0").unwrap();
    let port = probe.local_addr().unwrap().port();
    drop(probe);
    let path = std::env::temp_dir()
        .join(format!("ws-observability-window-{}.tsv", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let mut b = kgraph::GraphBuilder::new();
    let x = b.add_node("x", "xml");
    let q = b.add_node("q", "query language");
    let s = b.add_node("s", "sql");
    let r = b.add_node("r", "rdf");
    b.add_edge(x, q, "rel");
    b.add_edge(s, q, "rel");
    b.add_edge(r, q, "rel");
    std::fs::write(&path, kgraph::io::to_tsv(&b.build())).unwrap();
    let graph_arg = path.clone();
    std::thread::spawn(move || {
        let argv: Vec<String> = format!(
            "serve --graph {graph_arg} --port {port} --backend seq --workers 2 \
             --telemetry-interval-ms 50 --cache-capacity 0"
        )
        .split_whitespace()
        .map(String::from)
        .collect();
        let args = wikisearch_cli::args::parse(&argv).unwrap();
        let mut out = Vec::new();
        let _ = wikisearch_cli::serve::serve(&args, &mut out);
    });
    let mut stream = {
        let mut connected = None;
        for _ in 0..150 {
            if let Ok(s) = TcpStream::connect(("127.0.0.1", port)) {
                connected = Some(s);
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        connected.expect("windowed observability server never came up")
    };
    stream.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    // A burst of old load, then let it age past the 1-second window.
    for _ in 0..6 {
        let answer = request_line(&mut stream, &mut reader, "QUERY xml sql rdf");
        assert!(answer.contains("answers"), "{answer}");
    }
    std::thread::sleep(Duration::from_millis(1400));

    // Fresh load inside the window, plus one sampler tick to capture it.
    for _ in 0..2 {
        let answer = request_line(&mut stream, &mut reader, "QUERY xml sql");
        assert!(answer.contains("answers"), "{answer}");
    }
    std::thread::sleep(Duration::from_millis(150));

    let windowed: serde_json::Value =
        serde_json::from_str(&request_line(&mut stream, &mut reader, "STATS WINDOW 1")).unwrap();
    let cumulative: serde_json::Value =
        serde_json::from_str(&request_line(&mut stream, &mut reader, "STATS")).unwrap();

    let window_queries = windowed["queries"].as_u64().unwrap_or_else(|| panic!("{windowed}"));
    let total_queries = cumulative["engine"]["queries"].as_u64().unwrap();
    assert!(total_queries >= 8, "{cumulative}");
    assert!(window_queries >= 2, "fresh load missing from the window: {windowed}");
    assert!(
        window_queries < total_queries,
        "a 1-second window must shed the old burst: window {windowed} vs cumulative {cumulative}"
    );
    // The windowed latency histogram covers the windowed queries only.
    assert_eq!(windowed["latency"]["count"], windowed["queries"], "{windowed}");
    assert!(windowed["qps"].as_f64().unwrap() > 0.0, "{windowed}");
    writeln!(stream, "QUIT").unwrap();
    let _ = std::fs::remove_file(path);
}

#[test]
fn sharded_server_exposes_per_shard_counters() {
    // A dedicated --shards 3 server: the STATS `shards` block carries
    // exactly the documented keys and METRICS gains the ws_shard_*
    // series, still under the same exposition grammar.
    let probe = TcpListener::bind("127.0.0.1:0").unwrap();
    let port = probe.local_addr().unwrap().port();
    drop(probe);
    let path = std::env::temp_dir()
        .join(format!("ws-observability-sharded-{}.tsv", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let mut b = kgraph::GraphBuilder::new();
    let x = b.add_node("x", "xml");
    let q = b.add_node("q", "query language");
    let s = b.add_node("s", "sql");
    let r = b.add_node("r", "rdf");
    b.add_edge(x, q, "rel");
    b.add_edge(s, q, "rel");
    b.add_edge(r, q, "rel");
    std::fs::write(&path, kgraph::io::to_tsv(&b.build())).unwrap();
    std::thread::spawn(move || {
        let argv: Vec<String> =
            format!("serve --graph {path} --port {port} --backend seq --workers 2 --shards 3")
                .split_whitespace()
                .map(String::from)
                .collect();
        let args = wikisearch_cli::args::parse(&argv).unwrap();
        let mut out = Vec::new();
        let _ = wikisearch_cli::serve::serve(&args, &mut out);
    });
    let mut stream = {
        let mut connected = None;
        for _ in 0..150 {
            if let Ok(s) = TcpStream::connect(("127.0.0.1", port)) {
                connected = Some(s);
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        connected.expect("sharded observability server never came up")
    };
    stream.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    let answer = request_line(&mut stream, &mut reader, "QUERY xml sql rdf");
    assert!(answer.contains("answers"), "{answer}");

    let response = request_line(&mut stream, &mut reader, "STATS");
    let doc: serde_json::Value = serde_json::from_str(&response).unwrap();
    let shards = &doc["shards"];
    let mut keys: Vec<&str> = shards.as_object().unwrap().iter().map(|(k, _)| k.as_str()).collect();
    keys.sort_unstable();
    assert_eq!(
        keys,
        vec!["notifications", "notifications_suppressed", "pools", "rounds", "shards"],
        "{response}"
    );
    assert_eq!(shards["shards"], 3u64, "{response}");
    assert!(shards["rounds"].as_u64().unwrap() >= 1, "{response}");
    // One sharded query checks one session out of each shard's pool.
    assert_eq!(shards["pools"]["queries_run"], 3u64, "{response}");
    assert_eq!(shards["pools"]["quarantined"], 0u64, "{response}");
    // The facade pool is bypassed on the sharded path.
    assert_eq!(doc["pool"]["queries_run"], 0u64, "{response}");

    writeln!(stream, "METRICS").unwrap();
    let mut lines: Vec<String> = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end().to_string();
        if line == "# EOF" {
            break;
        }
        lines.push(line);
    }
    assert_prometheus_grammar(&lines);
    let text = lines.join("\n");
    for series in [
        "ws_shard_count",
        "ws_shard_rounds_total",
        "ws_shard_notifications_total",
        "ws_shard_notifications_suppressed_total",
        "ws_shard_pool_queries_total",
        "ws_shard_pool_quarantined_total",
    ] {
        assert!(text.contains(series), "missing series {series}:\n{text}");
    }
    writeln!(stream, "QUIT").unwrap();
}

#[test]
fn batched_server_exposes_batch_counters() {
    // A dedicated --batch-window-us server: the STATS `batch` block
    // carries exactly the documented keys and METRICS gains the
    // ws_batch_* series, still under the same exposition grammar.
    let probe = TcpListener::bind("127.0.0.1:0").unwrap();
    let port = probe.local_addr().unwrap().port();
    drop(probe);
    let path = std::env::temp_dir()
        .join(format!("ws-observability-batched-{}.tsv", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let mut b = kgraph::GraphBuilder::new();
    let x = b.add_node("x", "xml");
    let q = b.add_node("q", "query language");
    let s = b.add_node("s", "sql");
    let r = b.add_node("r", "rdf");
    b.add_edge(x, q, "rel");
    b.add_edge(s, q, "rel");
    b.add_edge(r, q, "rel");
    std::fs::write(&path, kgraph::io::to_tsv(&b.build())).unwrap();
    std::thread::spawn(move || {
        let argv: Vec<String> = format!(
            "serve --graph {path} --port {port} --backend seq --workers 2 \
             --batch-window-us 200 --batch-max 8"
        )
        .split_whitespace()
        .map(String::from)
        .collect();
        let args = wikisearch_cli::args::parse(&argv).unwrap();
        let mut out = Vec::new();
        let _ = wikisearch_cli::serve::serve(&args, &mut out);
    });
    let mut stream = {
        let mut connected = None;
        for _ in 0..150 {
            if let Ok(s) = TcpStream::connect(("127.0.0.1", port)) {
                connected = Some(s);
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        connected.expect("batched observability server never came up")
    };
    stream.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    // Distinct keyword sets so the result cache never swallows the
    // second request before it reaches the batcher.
    for line in ["QUERY xml sql", "QUERY rdf sql"] {
        let answer = request_line(&mut stream, &mut reader, line);
        assert!(answer.contains("answers"), "{answer}");
    }

    let response = request_line(&mut stream, &mut reader, "STATS");
    let doc: serde_json::Value = serde_json::from_str(&response).unwrap();
    let batch = &doc["batch"];
    let mut keys: Vec<&str> = batch.as_object().unwrap().iter().map(|(k, _)| k.as_str()).collect();
    keys.sort_unstable();
    assert_eq!(
        keys,
        vec![
            "batches",
            "delivered",
            "enqueued",
            "fill_us",
            "max_batch",
            "queries",
            "size",
            "window_us"
        ],
        "{response}"
    );
    for hist in ["size", "fill_us"] {
        let mut ks: Vec<&str> =
            batch[hist].as_object().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        ks.sort_unstable();
        assert_eq!(ks, vec!["count", "mean", "p50", "p95", "p99"], "{response}");
    }
    assert_eq!(batch["window_us"], 200u64, "{response}");
    assert_eq!(batch["max_batch"], 8u64, "{response}");
    assert!(batch["batches"].as_u64().unwrap() >= 1, "{response}");
    assert!(batch["queries"].as_u64().unwrap() >= 2, "{response}");
    // Demux conservation: everything enqueued behind a leader was handed
    // back, and every batch recorded its size.
    assert_eq!(batch["enqueued"], batch["delivered"], "{response}");
    assert_eq!(batch["size"]["count"], batch["batches"], "{response}");

    writeln!(stream, "METRICS").unwrap();
    let mut lines: Vec<String> = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end().to_string();
        if line == "# EOF" {
            break;
        }
        lines.push(line);
    }
    assert_prometheus_grammar(&lines);
    let text = lines.join("\n");
    for series in [
        "ws_batch_batches_total",
        "ws_batch_queries_total",
        "ws_batch_enqueued_total",
        "ws_batch_delivered_total",
        "ws_batch_size_bucket",
        "ws_batch_size_sum",
        "ws_batch_size_count",
        "ws_batch_fill_seconds_bucket",
        "ws_batch_fill_seconds_sum",
        "ws_batch_fill_seconds_count",
    ] {
        assert!(text.contains(series), "missing series {series}:\n{text}");
    }
    writeln!(stream, "QUIT").unwrap();
}

#[test]
fn remote_server_exposes_per_shard_breaker_and_rpc_counters() {
    // A dedicated remote server attached (--shard-addr) to two
    // in-process shard workers over the same dataset: the STATS `remote`
    // block carries exactly the documented keys and METRICS gains the
    // ws_remote_* series — including the labeled per-shard breaker
    // gauge — still under the same exposition grammar.
    let probe = TcpListener::bind("127.0.0.1:0").unwrap();
    let port = probe.local_addr().unwrap().port();
    drop(probe);
    let path = std::env::temp_dir()
        .join(format!("ws-observability-remote-{}.tsv", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let mut b = kgraph::GraphBuilder::new();
    let x = b.add_node("x", "xml");
    let q = b.add_node("q", "query language");
    let s = b.add_node("s", "sql");
    let r = b.add_node("r", "rdf");
    b.add_edge(x, q, "rel");
    b.add_edge(s, q, "rel");
    b.add_edge(r, q, "rel");
    let graph = b.build();
    std::fs::write(&path, kgraph::io::to_tsv(&graph)).unwrap();

    // Two in-process workers over the same dataset (the worker threads
    // are leaked, like the server thread; they die with the process).
    let w0 =
        central::ShardWorker::spawn_local(&graph, 2, 0, central::shard::DEFAULT_PARTITION_SEED);
    let w1 =
        central::ShardWorker::spawn_local(&graph, 2, 1, central::shard::DEFAULT_PARTITION_SEED);

    std::thread::spawn(move || {
        let argv: Vec<String> = format!(
            "serve --graph {path} --port {port} --backend seq --workers 2 \
             --shard-addr {w0},{w1} --heartbeat-ms 0"
        )
        .split_whitespace()
        .map(String::from)
        .collect();
        let args = wikisearch_cli::args::parse(&argv).unwrap();
        let mut out = Vec::new();
        let _ = wikisearch_cli::serve::serve(&args, &mut out);
    });
    let mut stream = {
        let mut connected = None;
        for _ in 0..150 {
            if let Ok(s) = TcpStream::connect(("127.0.0.1", port)) {
                connected = Some(s);
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        connected.expect("remote observability server never came up")
    };
    stream.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    let answer = request_line(&mut stream, &mut reader, "QUERY xml sql rdf");
    assert!(answer.contains("answers"), "{answer}");
    // Remote answers over a healthy fleet are full-fidelity.
    let doc: serde_json::Value = serde_json::from_str(&answer).unwrap();
    assert_eq!(doc["degraded"], false, "{answer}");

    let response = request_line(&mut stream, &mut reader, "STATS");
    let doc: serde_json::Value = serde_json::from_str(&response).unwrap();
    let remote = &doc["remote"];
    let mut keys: Vec<&str> = remote.as_object().unwrap().iter().map(|(k, _)| k.as_str()).collect();
    keys.sort_unstable();
    assert_eq!(
        keys,
        vec![
            "breaker",
            "breaker_opens",
            "degraded_queries",
            "dials",
            "notifications",
            "notifications_suppressed",
            "probe_failures",
            "probes",
            "retries",
            "rounds",
            "rpc_latency_us",
            "rpcs",
            "shards",
            "workers",
        ],
        "{response}"
    );
    assert_eq!(remote["shards"], 2u64, "{response}");
    assert!(remote["rpcs"].as_u64().unwrap() >= 2, "{response}");
    assert_eq!(remote["degraded_queries"], 0u64, "{response}");
    assert_eq!(remote["breaker"], serde_json::json!(["closed", "closed"]), "{response}");
    // Attached (unsupervised) workers: no fleet block.
    assert!(remote["workers"].is_null(), "{response}");
    let mut ks: Vec<&str> = remote["rpc_latency_us"]
        .as_object()
        .unwrap()
        .iter()
        .map(|(k, _)| k.as_str())
        .collect();
    ks.sort_unstable();
    assert_eq!(ks, vec!["count", "mean", "p50", "p95", "p99"], "{response}");
    // Remote serving replaces the in-process shard set and session pool.
    assert!(doc["shards"].is_null(), "{response}");
    assert_eq!(doc["pool"]["queries_run"], 0u64, "{response}");

    writeln!(stream, "METRICS").unwrap();
    let mut lines: Vec<String> = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end().to_string();
        if line == "# EOF" {
            break;
        }
        lines.push(line);
    }
    assert_prometheus_grammar(&lines);
    let text = lines.join("\n");
    for series in [
        "ws_remote_shards",
        "ws_remote_rpcs_total",
        "ws_remote_dials_total",
        "ws_remote_retries_total",
        "ws_remote_probes_total",
        "ws_remote_probe_failures_total",
        "ws_remote_breaker_opens_total",
        "ws_remote_degraded_queries_total",
        "ws_remote_rounds_total",
        "ws_remote_rpc_seconds_bucket",
        "ws_remote_rpc_seconds_sum",
        "ws_remote_rpc_seconds_count",
        "ws_remote_breaker_state{shard=\"0\"}",
        "ws_remote_breaker_state{shard=\"1\"}",
    ] {
        assert!(text.contains(series), "missing series {series}:\n{text}");
    }
    writeln!(stream, "QUIT").unwrap();
}

/// A hand-rolled check of the Prometheus text exposition line grammar
/// (no external parser in the vendored workspace):
///
/// * every line is `# HELP <name> <text>`, `# TYPE <name> counter|gauge|histogram`,
///   or `<name>[{<label>="<value>"}] <number>`;
/// * every sample's metric family was declared by a preceding `# TYPE`;
/// * histogram `_bucket` cumulative counts are non-decreasing and end at
///   the `le="+Inf"` bucket, which equals `_count`.
fn assert_prometheus_grammar(lines: &[String]) {
    let name_ok = |name: &str| {
        !name.is_empty()
            && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            && !name.starts_with(|c: char| c.is_ascii_digit())
    };
    let mut typed: Vec<(String, String)> = Vec::new();
    let mut bucket_state: Option<(String, u64, Option<u64>)> = None; // (family, last cumulative, +Inf)
    let mut counts: Vec<(String, u64)> = Vec::new();

    for line in lines {
        assert!(!line.is_empty(), "blank line inside exposition");
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().unwrap_or("");
            assert!(name_ok(name), "bad HELP name in {line:?}");
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().unwrap_or("");
            let kind = parts.next().unwrap_or("");
            assert!(name_ok(name), "bad TYPE name in {line:?}");
            assert!(["counter", "gauge", "histogram"].contains(&kind), "bad TYPE kind in {line:?}");
            typed.push((name.to_string(), kind.to_string()));
            continue;
        }
        assert!(!line.starts_with('#'), "unknown comment form {line:?}");

        // A sample line: name[{labels}] value
        let (series, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("sample line without value: {line:?}"));
        assert!(value.parse::<f64>().is_ok(), "non-numeric sample value in {line:?}");
        let (name, labels) = match series.split_once('{') {
            Some((n, l)) => {
                let l = l
                    .strip_suffix('}')
                    .unwrap_or_else(|| panic!("unterminated label set in {line:?}"));
                (n, Some(l))
            }
            None => (series, None),
        };
        assert!(name_ok(name), "bad sample name in {line:?}");
        if let Some(labels) = labels {
            for pair in labels.split(',') {
                let (k, v) =
                    pair.split_once('=').unwrap_or_else(|| panic!("label without '=' in {line:?}"));
                assert!(name_ok(k), "bad label name in {line:?}");
                assert!(
                    v.starts_with('"') && v.ends_with('"') && v.len() >= 2,
                    "unquoted label value in {line:?}"
                );
            }
        }

        // Family resolution: strip histogram suffixes.
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|f| typed.iter().any(|(n, k)| n == *f && k == "histogram"))
            .unwrap_or(name);
        assert!(
            typed.iter().any(|(n, _)| n == family),
            "sample {name} has no preceding # TYPE: {line:?}"
        );

        if name.ends_with("_bucket") {
            let cumulative: u64 = value.parse().expect("bucket counts are integers");
            let le = labels
                .and_then(|l| l.split(',').find(|p| p.starts_with("le=")))
                .expect("bucket without le label")
                .trim_start_matches("le=")
                .trim_matches('"')
                .to_string();
            match &mut bucket_state {
                Some((f, last, inf)) if f == family => {
                    assert!(cumulative >= *last, "bucket counts decreased: {line:?}");
                    *last = cumulative;
                    if le == "+Inf" {
                        *inf = Some(cumulative);
                    }
                }
                _ => {
                    bucket_state = Some((
                        family.to_string(),
                        cumulative,
                        (le == "+Inf").then_some(cumulative),
                    ));
                }
            }
        } else if name.ends_with("_count") && family != name {
            counts.push((family.to_string(), value.parse().expect("count is an integer")));
        }
    }
    // Each histogram's +Inf bucket equals its _count.
    for (family, count) in counts {
        let inf = bucket_state
            .as_ref()
            .filter(|(f, _, _)| *f == family)
            .and_then(|(_, _, inf)| *inf);
        // bucket_state only remembers the most recent family; check when
        // it is the one this _count closes.
        if let Some(inf) = inf {
            assert_eq!(inf, count, "{family}: le=\"+Inf\" != _count");
        }
    }
}
