//! Exp-2 (Fig. 8, row 1): total running time vs `Topk` on both datasets.
//! The paper's finding: GPU-Par and CPU-Par are stable across `Topk`
//! because the top-k answers are selected from the already-computed
//! top-(k,d) set; time only jumps when a larger `d` must be searched.

use crate::experiments::{engine_lineup, mean_profile_over};
use crate::{default_threads, queries_per_point, PreparedDataset};
use datagen::QueryWorkload;
use eval::runner::{ms, ExperimentSink};
use eval::Table;
use serde_json::json;
use textindex::ParsedQuery;

/// The `Topk` sweep of Fig. 8.
pub const TOPKS: [usize; 6] = [1, 10, 20, 30, 40, 50];

/// Run Exp-2 on both datasets.
pub fn run() -> serde_json::Value {
    let threads = default_threads();
    let nq = queries_per_point();
    println!("== Exp-2 (Fig. 8 row 1): vary Topk | {nq} queries/point, {threads} threads ==");
    let mut records = Vec::new();
    for ds in PreparedDataset::both() {
        println!("\n-- dataset {} --", ds.name);
        let engines = engine_lineup(threads);
        let mut workload = QueryWorkload::new(2000);
        let raw = workload.batch(6, nq); // Knum fixed at its default, 6
        let queries: Vec<ParsedQuery> =
            raw.iter().map(|r| ParsedQuery::parse(&ds.index, r)).collect();

        let mut table = Table::new(vec!["engine", "k=1", "k=10", "k=20", "k=30", "k=40", "k=50"]);
        let mut engines_json = Vec::new();
        for e in &engines {
            let mut cells = vec![e.name().to_string()];
            let mut totals = Vec::new();
            for k in TOPKS {
                let params = ds.params().with_top_k(k);
                let p = mean_profile_over(e.as_ref(), &ds.graph, &queries, &params);
                cells.push(ms(p.total()));
                totals.push(p.total().as_secs_f64() * 1e3);
            }
            table.row(cells);
            engines_json.push(json!({ "engine": e.name(), "totals_ms": totals }));
        }
        table.print();
        records.push(json!({ "dataset": ds.name, "topks": TOPKS, "engines": engines_json }));
    }
    let record = json!({ "experiment": "exp2_vary_topk", "datasets": records });
    if let Ok(path) = ExperimentSink::new().write("exp2_vary_topk", &record) {
        println!("json: {}", path.display());
    }
    record
}
